// The Trail driver (§4): a BlockDriver that services synchronous writes
// at log-disk transfer speed.
//
// Write path (§4.2): requests queue in the log queue; whenever a log
// disk is free, everything queued is batched into one physical write
// placed at the next free sector at/after the predicted head position on
// that disk's current log track. Completion of that physical write *is*
// the synchronous-write acknowledgement. The payload stays pinned in the
// buffer manager and trickles to the data disks in the background; reads
// are served from pinned memory when possible and otherwise hit the data
// disks at higher priority than write-backs (§4.3).
//
// After each physical log write the driver moves that disk's head to the
// closest sector of the next track (by issuing a read, exactly as the
// paper does) once the track's utilization exceeds the configured
// threshold (30% in the paper), maintaining the invariant that the head
// always sits on a track with room for the next batch. An idle timer
// repositions periodically so the prediction references never go stale
// (§3.1).
//
// Multiple log disks (§5.1's final optimization) are supported: while one
// disk repositions, the next batch is steered to an idle one, hiding the
// repositioning overhead entirely. Record pointers encode (disk, LBA) so
// the recovery chain crosses disks; each disk keeps its own circular
// track ring, head predictor, and header replicas.
//
// Mount/unmount implement the crash_var protocol of §3.3: mount finds
// crash_var == 0 => run recovery (write-back or adopt-pending per
// config), then stamps a new epoch with crash_var = 0; a clean unmount
// drains write-back and stamps crash_var = 1.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/buffer_manager.hpp"
#include "core/format_tool.hpp"
#include "core/head_predictor.hpp"
#include "core/log_format.hpp"
#include "core/recovery.hpp"
#include "core/track_allocator.hpp"
#include "disk/disk_device.hpp"
#include "disk/seek_model.hpp"
#include "io/block.hpp"
#include "io/device_queue.hpp"
#include "obs/obs.hpp"
#include "sim/simulator.hpp"

namespace trail::core {

struct TrailConfig {
  /// Track-utilization threshold beyond which the head moves to the next
  /// track after a write (0.30 in the prototype, §4.2). 0 reproduces the
  /// move-after-every-write scheme of [7]; 1 packs tracks completely.
  double track_utilization_threshold = 0.30;
  /// δ — head-prediction lead time covering command-processing overhead
  /// (§3.1). Duration{0} means "use the calibrated-equivalent default",
  /// i.e. the log-disk profile's published command overhead.
  sim::Duration delta{0};
  /// Period of the idle-time head repositioning that keeps the prediction
  /// references fresh (§3.1). Duration{0} disables it (ablation).
  sim::Duration idle_reposition_period = sim::millis(500);
  /// Max *requests* folded into one physical log write; 0 = unlimited.
  /// Sweeping this reproduces Table 1; 1 disables batching.
  std::uint32_t max_requests_per_physical = 0;
  /// Max dirty ranges coalesced into one data-disk write-back command by
  /// the per-disk CSCAN dispatcher (§4.2–§4.3): queued write-backs whose
  /// ranges are adjacent or overlapping merge into a single device
  /// command, with settled sub-ranges dropping out at dispatch.
  /// 1 disables coalescing (one command per record run, the pre-batching
  /// behaviour); must be >= 1.
  std::uint32_t max_writeback_ranges = 32;
  /// Recovery policy at mount (Fig. 4b): write pending records back to the
  /// data disks before resuming, or adopt them as live state and let the
  /// normal write-back path drain them.
  bool recovery_write_back = true;
  /// Force the O(N) sequential locate during recovery (ablation).
  bool recovery_sequential_locate = false;
  /// Bounded in-flight read window per log unit during recovery
  /// (RecoveryManager::Options::pipeline_depth). 1 reproduces the serial
  /// one-command-at-a-time recovery exactly; >= 2 overlaps locate probes,
  /// streams the rebuild arc with whole-track reads, and dispatches
  /// write-back runs through the batched CSCAN scheduler.
  std::uint32_t recovery_pipeline_depth = 8;
  /// Rebuild read-ahead budget in sectors per demand miss
  /// (0 = auto: recovery_pipeline_depth whole tracks).
  std::uint32_t recovery_readahead_sectors = 0;
  /// Write-back pacing (dirty high-watermark): when > 0, a data disk whose
  /// queue holds *only* write-back work defers dispatch until at least
  /// this many dirty sectors are queued, so bursts accumulate more
  /// mergeable ranges before the first command goes out. 0 keeps the
  /// work-conserving behaviour. Reads (and recovery writes) always
  /// dispatch immediately and flush the accumulated writes with them.
  std::uint32_t writeback_dirty_watermark = 0;
  /// Age bound on pacing: the oldest held write-back dispatches no later
  /// than this after it was queued, watermark reached or not. Must be > 0
  /// when the watermark is set.
  sim::Duration writeback_dirty_age = sim::millis(2);
  /// External global-sequence source (sharding): when set, record
  /// sequence ids come from this callback instead of the driver's own
  /// per-epoch counter. Ids must be strictly increasing per driver; a
  /// ShardedDriver hands out one monotonic sequence across all shards so
  /// cross-shard recovery can rebuild a total order.
  std::function<std::uint32_t()> sequence_source;
  /// Durability hook (sharding): called after every physical log write,
  /// once its records are adopted and registered but *before* the
  /// client acknowledgements fire, with the first/last sequence id the
  /// write carried. A ShardedDriver advances its global commit watermark
  /// here.
  std::function<void(std::uint32_t first_seq, std::uint32_t last_seq)> on_records_durable;
  /// Stall watchdog bound for request attribution (obs::ReqTracker): a
  /// single phase of one request lasting longer than this bumps
  /// `req.stalls.<phase>` and traces an instant. 0 disables the watchdog
  /// (phase histograms still record).
  sim::Duration req_stall_bound{0};
};

struct TrailStats {
  std::uint64_t requests_logged = 0;    // acknowledged synchronous writes
  std::uint64_t sectors_logged = 0;     // payload sectors on the log disks
  std::uint64_t physical_log_writes = 0;
  std::uint64_t records_written = 0;    // record headers (>= physical writes)
  std::uint64_t track_switches = 0;     // utilization-triggered repositions
  std::uint64_t idle_repositions = 0;
  std::uint64_t log_full_stalls = 0;
  std::uint64_t reads = 0;
  std::uint64_t read_buffer_hits = 0;   // served entirely from pinned memory
  std::uint64_t writebacks = 0;           // dirty ranges enqueued for write-back
  std::uint64_t writeback_sectors = 0;
  std::uint64_t writebacks_skipped = 0;   // superseded before dispatch (§4.2)
  std::uint64_t writebacks_dispatched = 0;  // ranges that reached a data disk
  std::uint64_t writeback_commands = 0;   // physical data-disk write commands
                                          // (< dispatched when ranges coalesce)

  /// Mean requests per physical log write (the batching factor).
  [[nodiscard]] double mean_batch_size() const {
    return physical_log_writes == 0
               ? 0.0
               : static_cast<double>(requests_logged) / static_cast<double>(physical_log_writes);
  }

  bool operator==(const TrailStats&) const = default;

  /// Deterministic one-line JSON snapshot (field order fixed); the
  /// determinism test compares these serialized snapshots, and benches
  /// embed them in their metrics blocks.
  [[nodiscard]] std::string to_json() const;
};

/// Where a driver's observability lands: metric-name prefix plus the
/// trace-lane (tid) layout. The default scope is the classic single-driver
/// layout; a ShardedDriver gives shard k the prefix "shard.k." and a
/// private lane block at obs::kShardTidBase + k * obs::kShardTidStride.
struct ObsScope {
  std::string metric_prefix;  // prepended to every metric/track name
  std::uint32_t unit_tid_base = 0;                      // log-unit lanes
  std::uint32_t data_tid_base = obs::kDataDiskTidBase;  // data-disk lanes
  std::uint32_t driver_tid = obs::kDriverTid;
  std::uint32_t recovery_tid = obs::kRecoveryTid;
  std::uint32_t shard_id = 0;  // flight-record shard tag
  /// Request-scoped causal attribution (obs::ReqTracker): per-phase
  /// latency histograms + flight records for every synchronous write.
  /// On by default; benches switch it off to measure its own overhead.
  bool request_attribution = true;
};

class TrailDriver final : public io::BlockDriver {
 public:
  /// Single log disk (the paper's prototype). Must be formatted.
  TrailDriver(sim::Simulator& sim, disk::DiskDevice& log_disk, TrailConfig config = {});
  /// Multiple log disks (§5.1's final optimization). All must be
  /// formatted; 1..15 disks.
  TrailDriver(sim::Simulator& sim, std::vector<disk::DiskDevice*> log_disks,
              TrailConfig config = {});
  ~TrailDriver() override;

  /// Register a data disk; returns its DeviceId.
  io::DeviceId add_data_disk(disk::DiskDevice& device);

  /// Attach an observability context (before mount()): sync-write and
  /// physical-write latency histograms, a log-queue-depth gauge, and —
  /// when the tracer is enabled — spans/instants for log appends, track
  /// switches, head-prediction waits, log-full stalls, write-back
  /// dispatch/skip, and recovery phases. Propagates to the data-disk
  /// device queues and to the RecoveryManager run at mount.
  void attach_obs(obs::Obs* obs) { attach_obs(obs, ObsScope{}); }
  /// Scoped variant: same instrumentation under `scope`'s metric prefix
  /// and trace lanes (a ShardedDriver attaches each shard here).
  void attach_obs(obs::Obs* obs, ObsScope scope);

  /// Boot the driver: read the disk headers, recover if the previous
  /// epoch crashed, stamp the new epoch, and position the heads. Drives
  /// the simulator until complete (the machine is booting).
  void mount();

  // ---- two-phase mount (sharding) ----
  // mount() is mount_finish(mount_begin()). A ShardedDriver runs
  // mount_begin on every shard first (locate + rebuild only), computes
  // the global epoch floor and the cross-shard consistency cut from the
  // combined outcomes, then finishes each shard under that cut.
  struct MountPrep {
    bool crashed = false;          // some replica had crash_var == 0
    std::uint32_t max_epoch = 0;   // newest epoch across header replicas
    std::vector<LogDiskHeader> headers;     // one per log unit
    std::vector<RecoveredRecord> pending;   // ascending key order
    RecoveryStats stats;
  };
  /// Read the disk headers and, if the previous epoch crashed, locate and
  /// rebuild the pending-record set (recovery phases 1–2; phase 3 waits
  /// for mount_finish). Drives the simulator until complete.
  [[nodiscard]] MountPrep mount_begin();
  /// Complete the mount: discard pending records with key >= cut_before
  /// (never adopted, never written back — their headers are erased so a
  /// later recovery cannot resurrect them), write back / adopt the
  /// survivors per config, stamp epoch max(prep.max_epoch, epoch_floor)+1
  /// with crash_var = 0, and position the heads.
  void mount_finish(MountPrep prep, std::uint32_t epoch_floor = 0,
                    std::uint64_t cut_before = ~std::uint64_t{0});

  // ---- asynchronous two-phase mount (overlapped sharded recovery) ----
  // Same semantics as mount_begin/mount_finish, but never steps the
  // simulator: `done` fires from a device completion when the phase
  // finishes. A ShardedDriver starts every shard's mount_begin_async at
  // once so all shards' recovery reads interleave on virtual time and
  // array recovery cost approaches max-over-shards; the sync forms are
  // these plus a local spin.
  void mount_begin_async(std::function<void(MountPrep)> done);
  void mount_finish_async(MountPrep prep, std::uint32_t epoch_floor, std::uint64_t cut_before,
                          std::function<void()> done);

  /// Clean shutdown: drain every pending write-back, then stamp
  /// crash_var = 1. Drives the simulator until complete.
  void unmount();

  /// Power failure: halt all devices mid-command (torn writes included)
  /// and stop all driver activity. The SectorStores survive; build a new
  /// driver on the same devices (after restart()) and mount() to recover.
  void crash();

  [[nodiscard]] bool mounted() const { return mounted_; }
  [[nodiscard]] std::uint32_t epoch() const { return epoch_; }
  [[nodiscard]] std::size_t log_disk_count() const { return units_.size(); }

  // ---- direct logging (§6 future work) ----
  /// Append raw client-log bytes as a Trail record (no data-disk home, no
  /// write-back). `cookie` is the byte offset of `bytes` in the client's
  /// logical log (monotonically increasing). The completion fires when the
  /// bytes are durable on a log disk. The record's tracks stay live until
  /// release_direct_before().
  void append_direct(std::span<const std::byte> bytes, std::uint64_t cookie, Completion cb);

  /// The client's checkpoint advanced: direct records whose payload ends
  /// at or before `cookie` are no longer needed; free their log tracks.
  void release_direct_before(std::uint64_t cookie);

  /// Direct-log records found by the last mount's recovery, ascending by
  /// key; payloads carry the client's log bytes (cookie = first entry's
  /// data_lba). The client replays from these.
  [[nodiscard]] const std::vector<RecoveredRecord>& recovered_direct_log() const {
    return recovered_direct_;
  }

  // BlockDriver interface.
  void submit_write(io::BlockAddr addr, std::uint32_t count, std::span<const std::byte> data,
                    Completion cb) override;
  /// Sharding variant of submit_write: the array already opened request
  /// context `req_id` on this shard's ReqTracker (and owns its finish —
  /// the gate phase is stamped after the global watermark releases the
  /// ack). req_id 0 == plain submit_write (the driver opens and finishes
  /// its own context).
  void submit_write_attributed(io::BlockAddr addr, std::uint32_t count,
                               std::span<const std::byte> data, Completion cb,
                               std::uint64_t req_id);
  /// This driver's request tracker (null until attach_obs with
  /// request_attribution). The ShardedDriver opens/finishes per-chunk
  /// contexts through it.
  [[nodiscard]] obs::ReqTracker* req_tracker() { return req_tracker_.get(); }
  void submit_read(io::BlockAddr addr, std::uint32_t count, std::span<std::byte> out,
                   Completion cb) override;
  void drain(Completion cb) override;

  [[nodiscard]] const TrailStats& stats() const { return stats_; }
  [[nodiscard]] const RecoveryStats& last_recovery() const { return last_recovery_; }
  /// Allocator / predictor of log disk 0 (stats & tests); use the unit
  /// accessors for multi-log-disk setups.
  [[nodiscard]] const TrackAllocator& allocator() const { return *units_[0].allocator; }
  [[nodiscard]] const HeadPredictor& predictor() const { return *units_[0].predictor; }
  [[nodiscard]] const TrackAllocator& allocator_of(std::size_t unit) const {
    return *units_.at(unit).allocator;
  }
  [[nodiscard]] const BufferManager& buffers() const { return *buffers_; }
  [[nodiscard]] const TrailConfig& config() const { return config_; }

  /// Pending synchronous writes not yet on a log disk (queue depth).
  [[nodiscard]] std::size_t log_queue_depth() const { return pending_.size(); }

  /// Keys (record_key) of all live records, ascending. Audit/test use:
  /// the ShardedDriver's cross-shard sequence-monotonicity check needs
  /// every shard's live set.
  [[nodiscard]] std::vector<std::uint64_t> live_record_keys() const {
    std::vector<std::uint64_t> keys;
    keys.reserve(live_records_.size());
    for (const auto& [key, rec] : live_records_) keys.push_back(key);
    return keys;
  }

  /// Times the serialization arena had to grow (tests pin the zero-
  /// allocation-per-append property: after warm-up this stops moving).
  [[nodiscard]] std::uint64_t serialize_arena_grows() const { return serialize_arena_.grows(); }

  /// Cross-layer invariant audit (trail::audit, DESIGN.md §9): component
  /// self-audits (staging buffer, per-unit allocators, every platter)
  /// plus the driver-level cross-checks — live records vs allocator
  /// accounting, buffered durable sectors vs the data-disk platters.
  /// `quiescent` means no synchronous write or physical log write is
  /// outstanding (post-mount, post-drain, pre-unmount), enabling the
  /// stricter emptiness and occupancy-vs-platter checks. Always compiled;
  /// with TRAIL_AUDIT defined it also runs automatically at the driver's
  /// quiesce points and throws std::logic_error on any error finding.
  void run_audit(audit::Report& report, bool quiescent = false) const;

 private:
  struct PendingWrite {
    io::BlockAddr addr;
    std::uint32_t count = 0;
    std::vector<std::byte> data;
    Completion cb;
    std::uint32_t logged = 0;     // sectors durable on a log disk
    std::uint32_t in_flight = 0;  // sectors in in-flight physical writes
    bool direct = false;          // direct-log payload (no write-back)
    std::uint64_t cookie = 0;     // direct: byte offset in the client log
    sim::TimePoint submitted{};   // arrival time (sync-latency histogram)
    std::uint64_t req_id = 0;     // attribution context (0 = untracked)
    bool req_external = false;    // context finished by the array, not us
  };
  struct LiveRecord {
    std::uint8_t unit = 0;
    disk::Lba header_lba = 0;
    disk::TrackId track = 0;
    bool direct = false;
    std::uint64_t end_cookie = 0;  // direct: one past the last payload byte
  };
  /// A record being carried by an in-flight physical write.
  struct BuiltRecord {
    RecordHeader header;
    disk::Lba header_lba = 0;
    // (request index in pending_, sector offset in request, sector count)
    struct Part {
      std::size_t request = 0;
      std::uint32_t offset = 0;
      std::uint32_t count = 0;
    };
    std::vector<Part> parts;
  };
  /// Reusable backing store for physical-write serialization images.
  /// Capacity only ever grows, so steady-state appends build the
  /// [header][escaped payload]... image with zero heap allocations; the
  /// grow counter lets tests pin that property.
  class SerializeArena {
   public:
    [[nodiscard]] std::span<std::byte> acquire(std::size_t bytes) {
      if (bytes > buf_.size()) {
        ++grows_;
        buf_.resize(bytes);
      }
      return std::span<std::byte>(buf_.data(), bytes);
    }
    [[nodiscard]] std::uint64_t grows() const { return grows_; }

   private:
    std::vector<std::byte> buf_;
    std::uint64_t grows_ = 0;
  };

  /// One log disk and its driving state.
  struct LogUnit {
    disk::DiskDevice* device = nullptr;
    LogDiskLayout layout;
    disk::SeekModel seek;
    std::unique_ptr<HeadPredictor> predictor;
    std::unique_ptr<TrackAllocator> allocator;
    bool busy = false;  // physical write or repositioning in flight
    bool full = false;  // ring exhausted: next track still live
    std::vector<BuiltRecord> inflight;  // records of the in-flight write
    sim::TimePoint busy_since{};        // start of the in-flight operation
    /// Predictor's positioning estimate (δ + rotational wait) for the
    /// in-flight physical write; split out of the service span as
    /// `req.phase.position` when the write completes.
    sim::Duration inflight_position{};
    disk::SectorBuf scratch{};

    LogUnit(disk::DiskDevice& dev)
        : device(&dev), layout(dev.geometry()), seek(dev.profile().seek) {}
  };

  [[nodiscard]] LogUnit* pick_idle_unit();
  [[nodiscard]] std::uint32_t next_sequence() {
    return config_.sequence_source ? config_.sequence_source() : next_seq_++;
  }
  void service_log_queue();
  bool service_on_unit(std::uint8_t unit_id);
  void on_physical_write_done(std::uint8_t unit_id, std::uint32_t last_sector);
  void switch_track(std::uint8_t unit_id);
  void on_record_durable(RecordId id);
  void enqueue_writeback(io::DeviceId dev, disk::Lba lba, std::uint32_t count);
  void arm_idle_timer();
  void position_heads_initial();
  void attach_data_queue_obs(std::size_t index);
  void note_log_queue_depth();
  [[nodiscard]] io::DeviceQueue& data_queue(io::DeviceId dev);
  [[nodiscard]] std::vector<disk::DiskDevice*> log_devices() const {
    std::vector<disk::DiskDevice*> devices;
    devices.reserve(units_.size());
    for (const LogUnit& unit : units_) devices.push_back(unit.device);
    return devices;
  }
  void run_sim_until(const std::function<bool()>& done, const char* what);
  /// mount_begin_async tail: run recovery (phases 1–2) when a crash was
  /// detected, then hand the finished prep to `done`.
  void finish_mount_begin(MountPrep prep, std::function<void(MountPrep)> done);
  /// mount_finish_async stages, continuation-passing over one shared
  /// state block: erase cut headers -> write back / adopt survivors ->
  /// stamp epoch headers -> position heads -> done.
  struct MountFinishState;
  void mf_erase_cut(std::shared_ptr<MountFinishState> st);
  void mf_after_cut(std::shared_ptr<MountFinishState> st);
  void mf_adopt(std::shared_ptr<MountFinishState> st);
  void mf_stamp(std::shared_ptr<MountFinishState> st);
  void mf_position(std::shared_ptr<MountFinishState> st);
  /// Phase-3 sink bound to the data-disk queues. Depth 1 submits plain
  /// priority-0 writes (the serial baseline); depth >= 2 submits
  /// single-range priority-1 batches so the PR-5 write-back scheduler
  /// coalesces adjacent runs and CSCAN-orders the sweep.
  [[nodiscard]] RecoveryManager::DataWriteFn make_recovery_data_write();
  /// TRAIL_AUDIT hook: run_audit(quiescent=true), dump counters into the
  /// attached metrics, throw on errors.
  void quiesce_audit(const char* where) const;
  void adopt_recovered(std::vector<RecoveredRecord> records);
  [[nodiscard]] std::uint32_t oldest_live_ptr_or(std::uint32_t fallback) const;

  sim::Simulator& sim_;
  TrailConfig config_;
  ObsScope scope_;
  std::vector<LogUnit> units_;
  std::uint8_t next_unit_hint_ = 0;  // round-robin start for unit picking
  std::unique_ptr<BufferManager> buffers_;
  std::vector<std::unique_ptr<io::DeviceQueue>> data_queues_;
  std::vector<disk::DiskDevice*> data_disks_;

  bool mounted_ = false;
  bool crashed_ = false;
  std::uint32_t epoch_ = 0;
  std::uint32_t next_seq_ = 1;
  std::uint32_t last_record_ptr_ = kNoPrevRecord;  // prev_sect chain tail

  std::deque<PendingWrite> pending_;
  /// Backing store for the [header][payload]... image of each physical
  /// log write; reused across appends (see serialize_arena_grows()).
  SerializeArena serialize_arena_;

  /// Live (not fully written back) records, keyed by record_key: the
  /// in-memory mirror of the log's active portion; begin() is log_head.
  std::map<std::uint64_t, LiveRecord> live_records_;

  TrailStats stats_;
  /// Write-back ranges enqueued but neither dispatched nor skipped yet.
  /// Together with the stats the invariant
  ///   writebacks == writebacks_dispatched + writebacks_skipped + wb_queued_ranges_
  /// holds at every instant; run_audit asserts it.
  std::uint64_t wb_queued_ranges_ = 0;
  RecoveryStats last_recovery_;
  std::vector<RecoveredRecord> recovered_direct_;
  /// The mount's recovery pipeline. Owned by the driver (not a stack
  /// local) because the async mount returns to the simulator while the
  /// pipeline has reads in flight; kept until the next mount or
  /// destruction so late completions stay valid.
  std::unique_ptr<RecoveryManager> recovery_;
  sim::EventId idle_timer_;

  // Observability (optional; null when unattached). Histogram/gauge
  // handles are cached at attach so the hot path never does name lookups.
  obs::Obs* obs_ = nullptr;
  obs::Histogram* h_sync_write_ = nullptr;   // submit -> ack, ns
  obs::Histogram* h_phys_write_ = nullptr;   // physical log write, ns
  obs::Histogram* h_batch_ = nullptr;        // requests acked per physical write
  obs::Histogram* h_wb_ranges_ = nullptr;    // coalesced ranges per wb command
  obs::Histogram* h_wb_sectors_ = nullptr;   // sectors per wb command
  obs::Gauge* g_log_queue_ = nullptr;        // pending synchronous writes
  /// Request-scoped phase attribution (obs/req.hpp); created by
  /// attach_obs when the scope asks for it.
  std::unique_ptr<obs::ReqTracker> req_tracker_;
  /// Stable storage for the scoped queue-depth counter-lane name (the
  /// tracer keeps interned pointers, so the string must outlive it).
  std::string trace_queue_depth_name_ = "trail.log_queue_depth";


  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace trail::core

file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3_group_commit.dir/bench_tab3_group_commit.cpp.o"
  "CMakeFiles/bench_tab3_group_commit.dir/bench_tab3_group_commit.cpp.o.d"
  "bench_tab3_group_commit"
  "bench_tab3_group_commit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_group_commit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

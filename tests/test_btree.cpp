#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "db/btree.hpp"
#include "disk/disk_device.hpp"
#include "disk/profile.hpp"
#include "io/standard_driver.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace trail::db {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest() {
    dev = std::make_unique<disk::DiskDevice>(sim, disk::wd_caviar_10g());
    dev_id = driver.add_device(*dev);
    pool = std::make_unique<BufferPool>(sim, 64);
    file = std::make_unique<PageFile>(driver, io::BlockAddr{dev_id, 0}, 4000);
    file_id = pool->register_file(*file);
    tree = std::make_unique<BTree>(*pool, file_id, *file, dev.get());
    tree->init_empty_offline();
  }

  void pump(const bool& flag) {
    while (!flag)
      if (!sim.step()) {
        ADD_FAILURE() << "stalled";
        return;
      }
  }

  bool insert_sync(Key k, BTree::Value v) {
    bool done = false, ok = false;
    tree->insert(k, v, [&](bool o) {
      ok = o;
      done = true;
    });
    pump(done);
    return ok;
  }

  std::pair<bool, BTree::Value> find_sync(Key k) {
    bool done = false, found = false;
    BTree::Value v = 0;
    tree->find(k, [&](bool f, BTree::Value val) {
      found = f;
      v = val;
      done = true;
    });
    pump(done);
    return {found, v};
  }

  std::vector<std::pair<Key, BTree::Value>> scan_sync(Key from, Key to,
                                                      std::size_t limit = ~0ull) {
    std::vector<std::pair<Key, BTree::Value>> out;
    bool done = false;
    tree->scan(
        from, to,
        [&out, limit](Key k, BTree::Value v) {
          out.emplace_back(k, v);
          return out.size() < limit;
        },
        [&] { done = true; });
    pump(done);
    return out;
  }

  sim::Simulator sim;
  io::StandardDriver driver;
  std::unique_ptr<disk::DiskDevice> dev;
  io::DeviceId dev_id;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<PageFile> file;
  std::uint32_t file_id{};
  std::unique_ptr<BTree> tree;
};

TEST_F(BTreeTest, EmptyTree) {
  EXPECT_EQ(tree->size(), 0u);
  EXPECT_EQ(tree->height(), 1u);
  EXPECT_FALSE(find_sync(42).first);
  EXPECT_TRUE(scan_sync(0, ~0ull).empty());
}

TEST_F(BTreeTest, InsertFindUpdate) {
  EXPECT_TRUE(insert_sync(10, 100));
  EXPECT_TRUE(insert_sync(5, 50));
  EXPECT_TRUE(insert_sync(20, 200));
  EXPECT_EQ(tree->size(), 3u);
  EXPECT_EQ(find_sync(10), (std::pair<bool, BTree::Value>{true, 100}));
  EXPECT_EQ(find_sync(5).second, 50u);
  EXPECT_FALSE(find_sync(15).first);
  // Upsert does not grow the tree.
  EXPECT_TRUE(insert_sync(10, 111));
  EXPECT_EQ(tree->size(), 3u);
  EXPECT_EQ(find_sync(10).second, 111u);
}

TEST_F(BTreeTest, SplitsGrowHeight) {
  // Fill past several leaf capacities with ascending keys.
  const std::size_t n = BTree::kLeafCapacity * 5;
  for (std::size_t i = 0; i < n; ++i) ASSERT_TRUE(insert_sync(i * 2, i));
  EXPECT_EQ(tree->size(), n);
  EXPECT_GE(tree->height(), 2u);
  for (std::size_t i = 0; i < n; i += 37) {
    const auto [found, v] = find_sync(i * 2);
    EXPECT_TRUE(found) << i;
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(find_sync(1).first);  // odd keys absent
}

TEST_F(BTreeTest, RandomInsertMatchesReferenceMap) {
  sim::Rng rng(20020625);
  std::map<Key, BTree::Value> reference;
  for (int i = 0; i < 4000; ++i) {
    const Key k = static_cast<Key>(rng.uniform(0, 10'000));
    const BTree::Value v = rng.next();
    reference[k] = v;
    ASSERT_TRUE(insert_sync(k, v));
  }
  EXPECT_EQ(tree->size(), reference.size());
  // Point queries.
  for (int i = 0; i < 500; ++i) {
    const Key k = static_cast<Key>(rng.uniform(0, 10'000));
    const auto it = reference.find(k);
    const auto [found, v] = find_sync(k);
    EXPECT_EQ(found, it != reference.end()) << k;
    if (found) {
      EXPECT_EQ(v, it->second) << k;
    }
  }
  // Full scan in order.
  const auto scanned = scan_sync(0, ~0ull);
  ASSERT_EQ(scanned.size(), reference.size());
  auto rit = reference.begin();
  for (const auto& [k, v] : scanned) {
    EXPECT_EQ(k, rit->first);
    EXPECT_EQ(v, rit->second);
    ++rit;
  }
}

TEST_F(BTreeTest, RangeScanRespectsBoundsAndEarlyStop) {
  for (Key k = 0; k < 1000; ++k) ASSERT_TRUE(insert_sync(k * 10, k));
  const auto mid = scan_sync(995, 2005);
  ASSERT_FALSE(mid.empty());
  EXPECT_EQ(mid.front().first, 1000u);
  EXPECT_EQ(mid.back().first, 2000u);
  EXPECT_EQ(mid.size(), 101u);
  const auto limited = scan_sync(0, ~0ull, 7);
  EXPECT_EQ(limited.size(), 7u);
}

TEST_F(BTreeTest, EraseRemovesAndReusesSpace) {
  for (Key k = 0; k < 100; ++k) ASSERT_TRUE(insert_sync(k, k));
  bool done = false, existed = false;
  tree->erase(50, [&](bool e) {
    existed = e;
    done = true;
  });
  pump(done);
  EXPECT_TRUE(existed);
  EXPECT_EQ(tree->size(), 99u);
  EXPECT_FALSE(find_sync(50).first);
  done = false;
  tree->erase(50, [&](bool e) {
    existed = e;
    done = true;
  });
  pump(done);
  EXPECT_FALSE(existed);
  EXPECT_TRUE(insert_sync(50, 555));
  EXPECT_EQ(find_sync(50).second, 555u);
}

TEST_F(BTreeTest, PersistsAcrossFlushAndReopen) {
  for (Key k = 0; k < 2000; ++k) ASSERT_TRUE(insert_sync(k * 3, k));
  // Clean shutdown: flush dirty pages, then reopen from the platter.
  bool flushed = false;
  pool->flush_dirty([&] { flushed = true; });
  pump(flushed);
  // Persist the meta (kept in memory online): emulate via bulk reopen —
  // the meta page is only written offline, so rewrite it.
  // (Online meta persistence is the caller's shutdown hook.)
  auto tree2 = std::make_unique<BTree>(*pool, file_id, *file, dev.get());
  // Reuse tree's in-memory meta to write it out, as a shutdown would.
  tree->flush_meta_offline();
  pool->reset();
  tree2->open_offline();
  EXPECT_EQ(tree2->size(), 2000u);
  bool done = false, found = false;
  BTree::Value v = 0;
  tree2->find(999 * 3, [&](bool f, BTree::Value val) {
    found = f;
    v = val;
    done = true;
  });
  pump(done);
  EXPECT_TRUE(found);
  EXPECT_EQ(v, 999u);
}

TEST_F(BTreeTest, BulkLoadBuildsSearchableTree) {
  std::vector<std::pair<Key, BTree::Value>> data;
  for (Key k = 0; k < 50'000; ++k) data.emplace_back(k * 7, k);
  tree->bulk_load_offline(data);
  EXPECT_EQ(tree->size(), data.size());
  EXPECT_GE(tree->height(), 2u);
  for (Key k = 0; k < 50'000; k += 997) {
    const auto [found, v] = find_sync(k * 7);
    EXPECT_TRUE(found) << k;
    EXPECT_EQ(v, k);
  }
  EXPECT_FALSE(find_sync(3).first);
  // Scans cross bulk-built leaf boundaries.
  const auto part = scan_sync(7 * 100, 7 * 200);
  EXPECT_EQ(part.size(), 101u);
  // Inserts continue to work after a bulk load.
  ASSERT_TRUE(insert_sync(1, 42));
  EXPECT_EQ(find_sync(1).second, 42u);
}

TEST_F(BTreeTest, BulkLoadRejectsUnsortedInput) {
  EXPECT_THROW(tree->bulk_load_offline({{5, 1}, {5, 2}}), std::invalid_argument);
  EXPECT_THROW(tree->bulk_load_offline({{9, 1}, {2, 2}}), std::invalid_argument);
}

}  // namespace
}  // namespace trail::db

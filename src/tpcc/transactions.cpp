#include "tpcc/transactions.hpp"

#include <algorithm>
#include <memory>
#include <vector>

namespace trail::tpcc {

namespace {

/// Early-exit async sequencer: each step receives next(ok); next(false)
/// short-circuits to the finish handler with ok=false.
class Flow {
 public:
  using Next = std::function<void(bool)>;
  using Step = std::function<void(Next)>;

  Flow& then(Step step) {
    steps_.push_back(std::move(step));
    return *this;
  }

  void run(std::function<void(bool)> finish) && {
    struct State {
      std::vector<Step> steps;
      std::function<void(bool)> finish;
      std::size_t index = 0;
    };
    auto st = std::make_shared<State>(State{std::move(steps_), std::move(finish), 0});
    auto advance = std::make_shared<std::function<void(bool)>>();
    *advance = [st, advance](bool ok) {
      if (!ok || st->index >= st->steps.size()) {
        auto finish = std::move(st->finish);
        *advance = nullptr;
        finish(ok);
        return;
      }
      Step& step = st->steps[st->index++];
      step(*advance);
    };
    auto kick = *advance;
    kick(true);
  }

 private:
  std::vector<Step> steps_;
};

}  // namespace

const char* txn_type_name(TxnType type) {
  switch (type) {
    case TxnType::kNewOrder: return "new-order";
    case TxnType::kPayment: return "payment";
    case TxnType::kOrderStatus: return "order-status";
    case TxnType::kDelivery: return "delivery";
    case TxnType::kStockLevel: return "stock-level";
  }
  return "?";
}

TxnType pick_txn_type(sim::Rng& rng) {
  const auto roll = rng.uniform(1, 100);
  if (roll <= 45) return TxnType::kNewOrder;
  if (roll <= 88) return TxnType::kPayment;
  if (roll <= 92) return TxnType::kOrderStatus;
  if (roll <= 96) return TxnType::kDelivery;
  return TxnType::kStockLevel;
}

void TxnRunner::run(TxnType type, Done done) {
  switch (type) {
    case TxnType::kNewOrder: new_order(std::move(done)); return;
    case TxnType::kPayment: payment(std::move(done)); return;
    case TxnType::kOrderStatus: order_status(std::move(done)); return;
    case TxnType::kDelivery: delivery(std::move(done)); return;
    case TxnType::kStockLevel: stock_level(std::move(done)); return;
  }
}

void TxnRunner::fail(db::Txn& txn, TxnType type, Done done, bool user_abort) {
  tpcc_.database().abort(txn, [type, user_abort, done = std::move(done)] {
    TxnResult result;
    result.type = type;
    result.committed = false;
    result.user_abort = user_abort;
    done(result);
  });
}

// ---------------------------------------------------------------------------
// NEW-ORDER (clause 2.4)
// ---------------------------------------------------------------------------

void TxnRunner::new_order(Done done) {
  struct Ctx {
    std::uint32_t w, d, c;
    std::uint32_t ol_cnt;
    bool rollback;  // clause 2.4.1.4: 1% unused item => rollback
    std::vector<std::uint32_t> items;
    std::vector<std::uint32_t> qty;
    std::uint32_t o_id = 0;
    double w_tax = 0, d_tax = 0, c_discount = 0;
    double total = 0;
  };
  auto ctx = std::make_shared<Ctx>();
  ctx->w = random_warehouse();
  ctx->d = random_district();
  ctx->c = nurand_customer();
  ctx->ol_cnt = static_cast<std::uint32_t>(rng_.uniform(5, 15));
  ctx->rollback = rng_.chance(0.01);
  for (std::uint32_t i = 0; i < ctx->ol_cnt; ++i) {
    ctx->items.push_back(nurand_item());
    ctx->qty.push_back(static_cast<std::uint32_t>(rng_.uniform(1, 10)));
  }

  db::Database& dbe = tpcc_.database();
  db::Txn& txn = dbe.begin();
  Flow flow;

  // District: allocate the order id.
  flow.then([this, &txn, ctx](Flow::Next next) {
    txn.get_for_update(t_district(), district_key(ctx->w, ctx->d),
                       [this, &txn, ctx, next](bool ok, bool found, db::RowBuf row) {
                         if (!ok || !found) {
                           next(false);
                           return;
                         }
                         auto dr = from_row<DistrictRow>(row);
                         ctx->o_id = dr.next_o_id;
                         ctx->d_tax = dr.tax;
                         dr.next_o_id += 1;
                         txn.update(t_district(), district_key(ctx->w, ctx->d), to_row(dr),
                                    [next](bool ok2) { next(ok2); });
                       });
  });
  // Warehouse tax + customer discount (reads).
  flow.then([this, &txn, ctx](Flow::Next next) {
    txn.get(t_warehouse(), warehouse_key(ctx->w), [ctx, next](bool found, db::RowBuf row) {
      if (found) ctx->w_tax = from_row<WarehouseRow>(row).tax;
      next(found);
    });
  });
  flow.then([this, &txn, ctx](Flow::Next next) {
    txn.get(t_customer(), customer_key(ctx->w, ctx->d, ctx->c),
            [ctx, next](bool found, db::RowBuf row) {
              if (found) ctx->c_discount = from_row<CustomerRow>(row).discount;
              next(found);
            });
  });
  // ORDER + NEW-ORDER rows.
  flow.then([this, &txn, ctx](Flow::Next next) {
    OrderRow orow;
    orow.w_id = ctx->w;
    orow.d_id = ctx->d;
    orow.o_id = ctx->o_id;
    orow.c_id = ctx->c;
    orow.entry_d = tpcc_.database().simulator().now().ns();
    orow.ol_cnt = ctx->ol_cnt;
    txn.insert(t_order(), order_key(ctx->w, ctx->d, ctx->o_id), to_row(orow),
               [next](bool ok) { next(ok); });
  });
  flow.then([this, &txn, ctx](Flow::Next next) {
    NewOrderRow nr{ctx->w, ctx->d, ctx->o_id};
    txn.insert(t_new_order(), new_order_key(ctx->w, ctx->d, ctx->o_id), to_row(nr),
               [next](bool ok) { next(ok); });
  });
  // Order lines: item read, stock update, order-line insert.
  for (std::uint32_t i = 0; i < ctx->ol_cnt; ++i) {
    const bool last = i + 1 == ctx->ol_cnt;
    flow.then([this, &txn, ctx, i, last](Flow::Next next) {
      if (last && ctx->rollback) {
        // Unused item number: the transaction must roll back (and still
        // counts as "completed" per clause 2.4.1.4's intent; we report it
        // as a user abort).
        next(false);
        return;
      }
      txn.get(t_item(), item_key(ctx->items[i]), [this, &txn, ctx, i, next](
                                                     bool found, db::RowBuf row) {
        if (!found) {
          next(false);
          return;
        }
        const double price = from_row<ItemRow>(row).price;
        txn.get_for_update(
            t_stock(), stock_key(ctx->w, ctx->items[i]),
            [this, &txn, ctx, i, price, next](bool ok, bool found2, db::RowBuf srow) {
              if (!ok || !found2) {
                next(false);
                return;
              }
              auto sr = from_row<StockRow>(srow);
              sr.quantity = sr.quantity >= ctx->qty[i] + 10 ? sr.quantity - ctx->qty[i]
                                                            : sr.quantity + 91 - ctx->qty[i];
              sr.ytd += ctx->qty[i];
              sr.order_cnt += 1;
              txn.update(
                  t_stock(), stock_key(ctx->w, ctx->items[i]), to_row(sr),
                  [this, &txn, ctx, i, price, next](bool ok2) {
                    if (!ok2) {
                      next(false);
                      return;
                    }
                    OrderLineRow lr;
                    lr.w_id = ctx->w;
                    lr.d_id = ctx->d;
                    lr.o_id = ctx->o_id;
                    lr.ol_number = i + 1;
                    lr.i_id = ctx->items[i];
                    lr.supply_w_id = ctx->w;
                    lr.quantity = ctx->qty[i];
                    lr.amount = price * ctx->qty[i];
                    ctx->total += lr.amount;
                    txn.insert(t_order_line(),
                               order_line_key(ctx->w, ctx->d, ctx->o_id, i + 1), to_row(lr),
                               [next](bool ok3) { next(ok3); });
                  });
            });
      });
    });
  }

  std::move(flow).run([this, &txn, ctx, done = std::move(done)](bool ok) mutable {
    if (!ok) {
      fail(txn, TxnType::kNewOrder, std::move(done), ctx->rollback);
      return;
    }
    tpcc_.database().commit(txn, [this, ctx, done = std::move(done)](bool committed) {
      if (committed) tpcc_.note_new_order(ctx->w, ctx->d, ctx->c, ctx->o_id);
      TxnResult result;
      result.type = TxnType::kNewOrder;
      result.committed = committed;
      done(result);
    });
  });
}

// ---------------------------------------------------------------------------
// PAYMENT (clause 2.5)
// ---------------------------------------------------------------------------

void TxnRunner::payment(Done done) {
  struct Ctx {
    std::uint32_t w, d, c = 0;
    double amount;
    bool by_name;
    std::string last;
  };
  auto ctx = std::make_shared<Ctx>();
  ctx->w = random_warehouse();
  ctx->d = random_district();
  ctx->amount = rng_.uniform(100, 500'000) / 100.0;
  ctx->by_name = rng_.chance(0.60);
  ctx->c = nurand_customer();  // by-id case / by-name fallback
  if (ctx->by_name)
    ctx->last = TpccDatabase::last_name(
        sim::nurand(rng_, 255, 0, 999, tpcc_.nurand_c().c_last));

  db::Txn& txn = tpcc_.database().begin();
  Flow flow;
  if (ctx->by_name) {
    // Resolve the customer through the by-name secondary index (real
    // index-page I/O; clause 2.5.2.2 picks the midpoint, rounded up).
    flow.then([this, ctx](Flow::Next next) {
      tpcc_.lookup_by_last_name(ctx->w, ctx->d, ctx->last,
                                [ctx, next](std::vector<std::uint32_t> ids) {
                                  if (!ids.empty()) ctx->c = ids[ids.size() / 2];
                                  next(true);
                                });
    });
  }
  flow.then([this, &txn, ctx](Flow::Next next) {
    txn.get_for_update(t_warehouse(), warehouse_key(ctx->w),
                       [this, &txn, ctx, next](bool ok, bool found, db::RowBuf row) {
                         if (!ok || !found) {
                           next(false);
                           return;
                         }
                         auto wr = from_row<WarehouseRow>(row);
                         wr.ytd += ctx->amount;
                         txn.update(t_warehouse(), warehouse_key(ctx->w), to_row(wr),
                                    [next](bool ok2) { next(ok2); });
                       });
  });
  flow.then([this, &txn, ctx](Flow::Next next) {
    txn.get_for_update(t_district(), district_key(ctx->w, ctx->d),
                       [this, &txn, ctx, next](bool ok, bool found, db::RowBuf row) {
                         if (!ok || !found) {
                           next(false);
                           return;
                         }
                         auto dr = from_row<DistrictRow>(row);
                         dr.ytd += ctx->amount;
                         txn.update(t_district(), district_key(ctx->w, ctx->d), to_row(dr),
                                    [next](bool ok2) { next(ok2); });
                       });
  });
  flow.then([this, &txn, ctx](Flow::Next next) {
    txn.get_for_update(
        t_customer(), customer_key(ctx->w, ctx->d, ctx->c),
        [this, &txn, ctx, next](bool ok, bool found, db::RowBuf row) {
          if (!ok || !found) {
            next(false);
            return;
          }
          auto cr = from_row<CustomerRow>(row);
          cr.balance -= ctx->amount;
          cr.ytd_payment += ctx->amount;
          cr.payment_cnt += 1;
          txn.update(t_customer(), customer_key(ctx->w, ctx->d, ctx->c), to_row(cr),
                     [next](bool ok2) { next(ok2); });
        });
  });
  flow.then([this, &txn, ctx](Flow::Next next) {
    HistoryRow hr;
    hr.w_id = ctx->w;
    hr.d_id = ctx->d;
    hr.c_id = ctx->c;
    hr.date = tpcc_.database().simulator().now().ns();
    hr.amount = ctx->amount;
    // History has no primary key in TPC-C; synthesize a unique one.
    const db::Key hkey = (static_cast<db::Key>(txn.id()) << 16) | ctx->d;
    txn.insert(t_history(), hkey, to_row(hr), [next](bool ok) { next(ok); });
  });

  std::move(flow).run([this, &txn, done = std::move(done)](bool ok) mutable {
    if (!ok) {
      fail(txn, TxnType::kPayment, std::move(done));
      return;
    }
    tpcc_.database().commit(txn, [done = std::move(done)](bool committed) {
      TxnResult result;
      result.type = TxnType::kPayment;
      result.committed = committed;
      done(result);
    });
  });
}

// ---------------------------------------------------------------------------
// ORDER-STATUS (clause 2.6) — read only
// ---------------------------------------------------------------------------

void TxnRunner::order_status(Done done) {
  struct Ctx {
    std::uint32_t w, d, c, o = 0;
    std::uint32_t ol_cnt = 0;
  };
  auto ctx = std::make_shared<Ctx>();
  ctx->w = random_warehouse();
  ctx->d = random_district();
  ctx->c = nurand_customer();
  const bool by_name = rng_.chance(0.60);
  std::string last;
  if (by_name)
    last = TpccDatabase::last_name(sim::nurand(rng_, 255, 0, 999, tpcc_.nurand_c().c_last));

  db::Txn& txn = tpcc_.database().begin();
  Flow flow;
  if (by_name) {
    flow.then([this, ctx, last](Flow::Next next) {
      tpcc_.lookup_by_last_name(ctx->w, ctx->d, last,
                                [ctx, next](std::vector<std::uint32_t> ids) {
                                  if (!ids.empty()) ctx->c = ids[ids.size() / 2];
                                  next(true);
                                });
    });
  }
  flow.then([this, ctx](Flow::Next next) {
    ctx->o = tpcc_.last_order_of(ctx->w, ctx->d, ctx->c);
    next(true);
  });
  flow.then([this, &txn, ctx](Flow::Next next) {
    txn.get(t_customer(), customer_key(ctx->w, ctx->d, ctx->c),
            [next](bool found, db::RowBuf) { next(found); });
  });
  flow.then([this, &txn, ctx](Flow::Next next) {
    if (ctx->o == 0) {
      next(true);  // customer has no tracked order yet
      return;
    }
    txn.get(t_order(), order_key(ctx->w, ctx->d, ctx->o),
            [ctx, next](bool found, db::RowBuf row) {
              if (found) ctx->ol_cnt = from_row<OrderRow>(row).ol_cnt;
              next(true);
            });
  });
  flow.then([this, &txn, ctx](Flow::Next next) {
    if (ctx->ol_cnt == 0) {
      next(true);
      return;
    }
    // Read each order line sequentially.
    auto line = std::make_shared<std::uint32_t>(1);
    auto step = std::make_shared<std::function<void()>>();
    *step = [this, &txn, ctx, line, step, next] {
      if (*line > ctx->ol_cnt) {
        *step = nullptr;
        next(true);
        return;
      }
      const std::uint32_t ol = (*line)++;
      txn.get(t_order_line(), order_line_key(ctx->w, ctx->d, ctx->o, ol),
              [step](bool, db::RowBuf) { { auto s2 = *step; s2(); } });
    };
    auto kick = *step;
    kick();
  });

  std::move(flow).run([this, &txn, done = std::move(done)](bool ok) mutable {
    if (!ok) {
      fail(txn, TxnType::kOrderStatus, std::move(done));
      return;
    }
    tpcc_.database().commit(txn, [done = std::move(done)](bool committed) {
      TxnResult result;
      result.type = TxnType::kOrderStatus;
      result.committed = committed;
      done(result);
    });
  });
}

// ---------------------------------------------------------------------------
// DELIVERY (clause 2.7)
// ---------------------------------------------------------------------------

void TxnRunner::delivery(Done done) {
  struct Ctx {
    std::uint32_t w;
    std::uint32_t carrier;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> picked;  // (d, o)
    std::uint32_t d = 1;
    std::uint32_t c = 0;
    std::uint32_t ol_cnt = 0;
    double total = 0;
  };
  auto ctx = std::make_shared<Ctx>();
  ctx->w = random_warehouse();
  ctx->carrier = static_cast<std::uint32_t>(rng_.uniform(1, 10));

  db::Txn& txn = tpcc_.database().begin();
  Flow flow;
  for (std::uint32_t d = 1; d <= tpcc_.scale().districts_per_warehouse; ++d) {
    flow.then([this, &txn, ctx, d](Flow::Next next) {
      const std::uint32_t o = tpcc_.oldest_new_order(ctx->w, d, /*pop=*/true);
      if (o == 0) {
        next(true);  // no undelivered order in this district: skip
        return;
      }
      ctx->picked.emplace_back(d, o);
      // Delete NEW-ORDER row, stamp the order, stamp its lines, credit
      // the customer.
      txn.remove(t_new_order(), new_order_key(ctx->w, d, o), [this, &txn, ctx, d, o, next](
                                                                 bool ok) {
        if (!ok) {
          next(false);
          return;
        }
        txn.get_for_update(
            t_order(), order_key(ctx->w, d, o),
            [this, &txn, ctx, d, o, next](bool ok2, bool found, db::RowBuf row) {
              if (!ok2 || !found) {
                next(false);
                return;
              }
              auto orow = from_row<OrderRow>(row);
              orow.carrier_id = ctx->carrier;
              ctx->c = orow.c_id;
              ctx->ol_cnt = orow.ol_cnt;
              ctx->total = 0;
              txn.update(
                  t_order(), order_key(ctx->w, d, o), to_row(orow),
                  [this, &txn, ctx, d, o, next](bool ok3) {
                    if (!ok3) {
                      next(false);
                      return;
                    }
                    // Stamp each order line with the delivery date.
                    auto line = std::make_shared<std::uint32_t>(1);
                    auto step = std::make_shared<std::function<void()>>();
                    *step = [this, &txn, ctx, d, o, line, step, next] {
                      if (*line > ctx->ol_cnt) {
                        *step = nullptr;
                        // Credit the customer's balance.
                        txn.get_for_update(
                            t_customer(), customer_key(ctx->w, d, ctx->c),
                            [this, &txn, ctx, d, next](bool ok4, bool found2,
                                                       db::RowBuf crow) {
                              if (!ok4 || !found2) {
                                next(false);
                                return;
                              }
                              auto cr = from_row<CustomerRow>(crow);
                              cr.balance += ctx->total;
                              cr.delivery_cnt += 1;
                              txn.update(t_customer(), customer_key(ctx->w, d, ctx->c),
                                         to_row(cr), [next](bool ok5) { next(ok5); });
                            });
                        return;
                      }
                      const std::uint32_t ol = (*line)++;
                      txn.get_for_update(
                          t_order_line(), order_line_key(ctx->w, d, o, ol),
                          [this, &txn, ctx, d, o, ol, step, next](bool ok4, bool found2,
                                                                  db::RowBuf lrow) {
                            if (!ok4) {
                              next(false);
                              return;
                            }
                            if (!found2) {
                              { auto s2 = *step; s2(); }
                              return;
                            }
                            auto lr = from_row<OrderLineRow>(lrow);
                            lr.delivery_d = tpcc_.database().simulator().now().ns();
                            ctx->total += lr.amount;
                            txn.update(t_order_line(), order_line_key(ctx->w, d, o, ol),
                                       to_row(lr), [step, next](bool ok5) {
                                         if (!ok5) {
                                           next(false);
                                           return;
                                         }
                                         { auto s2 = *step; s2(); }
                                       });
                          });
                    };
                    auto kick = *step;
                    kick();
                  });
            });
      });
    });
  }

  std::move(flow).run([this, &txn, ctx, done = std::move(done)](bool ok) mutable {
    if (!ok) {
      // Return the popped orders to the backlog (newest first so order is
      // preserved when re-prepended).
      for (auto it = ctx->picked.rbegin(); it != ctx->picked.rend(); ++it)
        tpcc_.unpop_new_order(ctx->w, it->first, it->second);
      fail(txn, TxnType::kDelivery, std::move(done));
      return;
    }
    tpcc_.database().commit(txn, [this, ctx, done = std::move(done)](bool committed) {
      if (!committed)
        for (auto it = ctx->picked.rbegin(); it != ctx->picked.rend(); ++it)
          tpcc_.unpop_new_order(ctx->w, it->first, it->second);
      TxnResult result;
      result.type = TxnType::kDelivery;
      result.committed = committed;
      done(result);
    });
  });
}

// ---------------------------------------------------------------------------
// STOCK-LEVEL (clause 2.8) — read only
// ---------------------------------------------------------------------------

void TxnRunner::stock_level(Done done) {
  struct Ctx {
    std::uint32_t w, d;
    std::uint32_t threshold;
    std::uint32_t next_o = 0;
    std::vector<std::uint32_t> item_ids;
    std::uint32_t low = 0;
  };
  auto ctx = std::make_shared<Ctx>();
  ctx->w = random_warehouse();
  ctx->d = random_district();
  ctx->threshold = static_cast<std::uint32_t>(rng_.uniform(10, 20));

  db::Txn& txn = tpcc_.database().begin();
  Flow flow;
  flow.then([this, &txn, ctx](Flow::Next next) {
    txn.get(t_district(), district_key(ctx->w, ctx->d),
            [ctx, next](bool found, db::RowBuf row) {
              if (!found) {
                next(false);
                return;
              }
              ctx->next_o = from_row<DistrictRow>(row).next_o_id;
              next(true);
            });
  });
  // Collect item ids from the last 20 orders' lines, then probe stock.
  flow.then([this, &txn, ctx](Flow::Next next) {
    const std::uint32_t from = ctx->next_o > 20 ? ctx->next_o - 20 : 1;
    auto o = std::make_shared<std::uint32_t>(from);
    auto ol = std::make_shared<std::uint32_t>(1);
    auto step = std::make_shared<std::function<void()>>();
    *step = [this, &txn, ctx, o, ol, step, next] {
      if (*o >= ctx->next_o) {
        *step = nullptr;
        next(true);
        return;
      }
      const std::uint32_t oo = *o, ll = *ol;
      if (ll > 15) {
        *ol = 1;
        ++*o;
        { auto s2 = *step; s2(); }
        return;
      }
      ++*ol;
      txn.get(t_order_line(), order_line_key(ctx->w, ctx->d, oo, ll),
              [ctx, step](bool found, db::RowBuf row) {
                if (found) ctx->item_ids.push_back(from_row<OrderLineRow>(row).i_id);
                { auto s2 = *step; s2(); }
              });
    };
    auto kick = *step;
    kick();
  });
  flow.then([this, &txn, ctx](Flow::Next next) {
    std::sort(ctx->item_ids.begin(), ctx->item_ids.end());
    ctx->item_ids.erase(std::unique(ctx->item_ids.begin(), ctx->item_ids.end()),
                        ctx->item_ids.end());
    auto idx = std::make_shared<std::size_t>(0);
    auto step = std::make_shared<std::function<void()>>();
    *step = [this, &txn, ctx, idx, step, next] {
      if (*idx >= ctx->item_ids.size()) {
        *step = nullptr;
        next(true);
        return;
      }
      const std::uint32_t item = ctx->item_ids[(*idx)++];
      txn.get(t_stock(), stock_key(ctx->w, item), [ctx, step](bool found, db::RowBuf row) {
        if (found && from_row<StockRow>(row).quantity < ctx->threshold) ++ctx->low;
        { auto s2 = *step; s2(); }
      });
    };
    auto kick = *step;
    kick();
  });

  std::move(flow).run([this, &txn, done = std::move(done)](bool ok) mutable {
    if (!ok) {
      fail(txn, TxnType::kStockLevel, std::move(done));
      return;
    }
    tpcc_.database().commit(txn, [done = std::move(done)](bool committed) {
      TxnResult result;
      result.type = TxnType::kStockLevel;
      result.committed = committed;
      done(result);
    });
  });
}

}  // namespace trail::tpcc

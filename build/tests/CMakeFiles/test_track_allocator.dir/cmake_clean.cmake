file(REMOVE_RECURSE
  "CMakeFiles/test_track_allocator.dir/test_track_allocator.cpp.o"
  "CMakeFiles/test_track_allocator.dir/test_track_allocator.cpp.o.d"
  "test_track_allocator"
  "test_track_allocator.pdb"
  "test_track_allocator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_track_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

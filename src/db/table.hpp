// Table: fixed-size rows in slotted pages with an in-memory hash index.
//
// Slot layout on the page: [u8 used][u64 key][row bytes], so the index
// can be rebuilt by scanning pages at boot (there is no persistent index
// structure — like the paper's Berkeley DB usage, the evaluation's tables
// are access-method-simple; the interesting machinery is underneath).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/buffer_pool.hpp"
#include "db/types.hpp"

namespace trail::db {

class Table {
 public:
  Table(std::string name, TableId id, std::uint32_t row_size, BufferPool& pool,
        std::uint32_t pool_file_id, PageNo page_count, disk::DiskDevice* device,
        PageFile* file);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] TableId id() const { return id_; }
  [[nodiscard]] std::uint32_t row_size() const { return row_size_; }
  [[nodiscard]] std::uint64_t row_count() const { return index_.size(); }
  [[nodiscard]] std::uint64_t capacity_rows() const {
    return static_cast<std::uint64_t>(slots_per_page_) * page_count_;
  }
  [[nodiscard]] bool contains(Key key) const { return index_.contains(key); }

  /// Read a row through the buffer pool. cb(found, row bytes).
  void get(Key key, std::function<void(bool, RowBuf)> cb);

  /// Write a row image (insert-or-update) through the buffer pool; used
  /// by transaction apply and by WAL redo. cb fires once the page frame
  /// is updated (and dirty), not when it reaches disk.
  void apply_image(Key key, const RowBuf& row, std::function<void()> cb);

  /// Remove a row (transaction apply / redo of kDelete).
  void remove(Key key, std::function<void()> cb);

  /// Page currently holding `key`, if present.
  [[nodiscard]] std::optional<PageNo> page_of(Key key) const;
  /// NO-STEAL pins, forwarded to the buffer pool with this table's file id.
  void pin_page(PageNo page);
  void unpin_page(PageNo page);

  /// Offline boot path: scan the durable pages and rebuild the hash index
  /// and free-slot bookkeeping. Requires the attached device.
  void rebuild_index_offline();

  /// Offline bulk load used by dataset population (no timed I/O): writes
  /// the row image directly to the platter and indexes it.
  void load_row_offline(Key key, const RowBuf& row);

  /// Offline row removal (WAL redo of kDelete during recovery).
  void remove_row_offline(Key key);

  /// Iterate all keys (index order unspecified).
  void for_each_key(const std::function<void(Key)>& fn) const;

 private:
  struct Slot {
    PageNo page;
    std::uint32_t slot;
  };
  [[nodiscard]] std::uint32_t slot_bytes() const { return 1 + 8 + row_size_; }
  [[nodiscard]] Slot location_of(std::uint32_t global_slot) const {
    return Slot{global_slot / slots_per_page_, global_slot % slots_per_page_};
  }
  [[nodiscard]] std::uint32_t allocate_slot(Key key);
  void write_slot(std::span<std::byte> page, std::uint32_t slot, bool used, Key key,
                  const RowBuf& row) const;

  std::string name_;
  TableId id_;
  std::uint32_t row_size_;
  BufferPool& pool_;
  std::uint32_t pool_file_id_;
  PageNo page_count_;
  std::uint32_t slots_per_page_;
  disk::DiskDevice* device_;  // offline access (population, index rebuild)
  PageFile* file_;

  std::unordered_map<Key, std::uint32_t> index_;  // key -> global slot
  std::vector<std::uint32_t> free_slots_;
  std::uint32_t next_unused_slot_ = 0;
};

}  // namespace trail::db

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "trail_fixture.hpp"

namespace trail::testing {
namespace {

using core::TrailConfig;
using disk::kSectorSize;

class TrailDriverTest : public TrailFixture {
 protected:
  TrailDriverTest() : TrailFixture(2) {}
};

TEST_F(TrailDriverTest, MountFormatsChecks) {
  start();
  EXPECT_TRUE(driver->mounted());
  EXPECT_EQ(driver->epoch(), 1u);
  // Mount stamps crash_var = 0.
  disk::SectorBuf sector{};
  log_disk->store().read(core::LogDiskLayout(log_disk->geometry()).header_lba(0), 1, sector);
  const auto hdr = core::parse_disk_header(sector);
  ASSERT_TRUE(hdr.has_value());
  EXPECT_EQ(hdr->epoch, 1u);
  EXPECT_EQ(hdr->crash_var, 0u);
}

TEST_F(TrailDriverTest, UnformattedDiskRejected) {
  disk::DiskDevice raw{sim, disk::small_test_disk()};
  EXPECT_THROW(core::TrailDriver(sim, raw), std::invalid_argument);
}

TEST_F(TrailDriverTest, WriteAckThenReadBack) {
  start();
  const auto data = make_pattern(4, 42);
  const io::BlockAddr addr{devices[0], 64};
  const auto latency = write_sync(addr, data);
  EXPECT_GT(latency.ns(), 0);
  const auto got = read_sync(addr, 4);
  EXPECT_EQ(got, data);
}

TEST_F(TrailDriverTest, AckLatencyIsTransferPlusOverhead) {
  start();
  // Prime the pipeline (first write lands mid-track after mount).
  (void)write_sync({devices[0], 0}, make_pattern(1, 1));
  settle();
  const auto& p = log_disk->profile();
  // Several sparse single-sector writes: each should cost about
  // overhead + (header + payload) transfer, never a rotation.
  for (int i = 0; i < 10; ++i) {
    sim.run_until(sim.now() + sim::millis(4));  // wait out the reposition
    const auto lat = write_sync({devices[0], static_cast<disk::Lba>(100 + i)},
                                make_pattern(1, 100 + i));
    EXPECT_LT(lat, p.command_overhead + p.sector_time(0) * 6)
        << "sparse Trail write " << i << " paid rotation: " << sim::to_string(lat);
  }
}

TEST_F(TrailDriverTest, WritebackReachesDataDisk) {
  start();
  const auto data = make_pattern(2, 7);
  write_sync({devices[1], 300}, data);
  settle();
  verify_expected_on_data_disks();
  EXPECT_EQ(driver->stats().writeback_sectors, 2u);
  EXPECT_EQ(driver->buffers().pinned_sectors(), 0u);
}

TEST_F(TrailDriverTest, ReadsHitBufferBeforeWriteback) {
  start();
  const auto data = make_pattern(2, 9);
  write_sync({devices[0], 500}, data);
  // Immediately read (write-back likely still queued): must be served
  // from pinned memory with the new content.
  const auto got = read_sync({devices[0], 500}, 2);
  EXPECT_EQ(got, data);
  EXPECT_GE(driver->stats().read_buffer_hits, 1u);
}

TEST_F(TrailDriverTest, ReadMissGoesToDataDisk) {
  start();
  // Pre-seed the data disk directly.
  const auto data = make_pattern(1, 77);
  data_disks[0]->store().write(123, 1, data);
  const auto got = read_sync({devices[0], 123}, 1);
  EXPECT_EQ(got, data);
  EXPECT_EQ(driver->stats().read_buffer_hits, 0u);
}

TEST_F(TrailDriverTest, OverlappingReadMergesBufferAndDisk) {
  start();
  // Disk has old content for 4 sectors; buffer holds newer content for the
  // middle two.
  const auto old4 = make_pattern(4, 1);
  data_disks[0]->store().write(200, 4, old4);
  const auto new2 = make_pattern(2, 2);
  write_sync({devices[0], 201}, new2);
  const auto got = read_sync({devices[0], 200}, 4);
  EXPECT_EQ(std::memcmp(got.data(), old4.data(), kSectorSize), 0);
  EXPECT_EQ(std::memcmp(got.data() + kSectorSize, new2.data(), 2 * kSectorSize), 0);
  EXPECT_EQ(std::memcmp(got.data() + 3 * kSectorSize, old4.data() + 3 * kSectorSize,
                        kSectorSize), 0);
}

TEST_F(TrailDriverTest, ClusteredWritesBatch) {
  start();
  // Submit 16 writes back-to-back with no waiting: all but the first
  // should coalesce into very few physical log writes.
  int acked = 0;
  for (int i = 0; i < 16; ++i) {
    driver->submit_write({devices[0], static_cast<disk::Lba>(i * 4)}, 1,
                         make_pattern(1, 1000 + i), [&] { ++acked; });
  }
  while (acked < 16) ASSERT_TRUE(sim.step());
  EXPECT_EQ(driver->stats().requests_logged, 16u);
  EXPECT_LE(driver->stats().physical_log_writes, 4u);
  EXPECT_GT(driver->stats().mean_batch_size(), 3.0);
  settle();
  verify_all_acknowledged_durable();
}

TEST_F(TrailDriverTest, BatchingDisabledWritesOnePerRequest) {
  TrailConfig cfg;
  cfg.max_requests_per_physical = 1;
  start(cfg);
  int acked = 0;
  for (int i = 0; i < 8; ++i)
    driver->submit_write({devices[0], static_cast<disk::Lba>(i * 2)}, 1,
                         make_pattern(1, i), [&] { ++acked; });
  while (acked < 8) ASSERT_TRUE(sim.step());
  EXPECT_EQ(driver->stats().physical_log_writes, 8u);
}

TEST_F(TrailDriverTest, SupersededWriteCollapsesWriteback) {
  start();
  const io::BlockAddr addr{devices[0], 700};
  write_sync(addr, make_pattern(2, 1));
  write_sync(addr, make_pattern(2, 2));
  write_sync(addr, make_pattern(2, 3));
  settle();
  verify_expected_on_data_disks();  // latest content wins
  EXPECT_GE(driver->stats().writebacks_skipped, 1u)
      << "at least one queued write-back should have been skipped";
}

TEST_F(TrailDriverTest, LargeWriteSpansTracksAndRoundTrips) {
  start();
  // 50 sectors > small disk track size (16-24): must split across records
  // and physical writes.
  const auto data = make_pattern(50, 5);
  const io::BlockAddr addr{devices[0], 40};
  write_sync(addr, data);
  EXPECT_EQ(read_sync(addr, 50), data);
  settle();
  verify_expected_on_data_disks();
}

TEST_F(TrailDriverTest, UtilizationThresholdTriggersTrackSwitch) {
  TrailConfig cfg;
  cfg.track_utilization_threshold = 0.30;
  start(cfg);
  const auto before = driver->stats().track_switches;
  // Each 8-sector write exceeds 30% of a <=24-sector track.
  for (int i = 0; i < 5; ++i) {
    write_sync({devices[0], static_cast<disk::Lba>(i * 8)}, make_pattern(8, i));
    sim.run_until(sim.now() + sim::millis(10));
  }
  EXPECT_GE(driver->stats().track_switches - before, 4u);
}

TEST_F(TrailDriverTest, ThresholdOneAllowsManyBatchesPerTrack) {
  TrailConfig cfg;
  cfg.track_utilization_threshold = 1.0;
  start(cfg);
  const auto before = driver->stats().track_switches;
  for (int i = 0; i < 6; ++i) {
    write_sync({devices[0], static_cast<disk::Lba>(i)}, make_pattern(1, i));
    sim.run_until(sim.now() + sim::millis(5));
  }
  // 6 single-sector writes (2 sectors each w/ header) fit in one-ish track.
  EXPECT_LE(driver->stats().track_switches - before, 2u);
}

TEST_F(TrailDriverTest, IdleRepositionKeepsPredictionFreshUnderDrift) {
  // With spindle drift and a long idle gap, the periodic reposition should
  // keep sparse writes rotation-free.
  log_profile_.rotation_drift_ppm = 300.0;
  log_disk = std::make_unique<disk::DiskDevice>(sim, log_profile_);
  core::format_log_disk(*log_disk);
  TrailConfig cfg;
  cfg.idle_reposition_period = sim::millis(200);
  start(cfg);
  (void)write_sync({devices[0], 0}, make_pattern(1, 1));
  sim.run_until(sim.now() + sim::seconds(5));  // long idle, several repositions
  EXPECT_GE(driver->stats().idle_repositions, 10u);
  const auto lat = write_sync({devices[0], 5}, make_pattern(1, 2));
  const auto& p = log_profile_;
  EXPECT_LT(lat, p.command_overhead + p.sector_time(0) * 6)
      << "prediction went stale despite idle repositioning";
}

TEST_F(TrailDriverTest, NoIdleRepositionGoesStaleUnderDrift) {
  log_profile_.rotation_drift_ppm = 400.0;
  log_disk = std::make_unique<disk::DiskDevice>(sim, log_profile_);
  core::format_log_disk(*log_disk);
  TrailConfig cfg;
  cfg.idle_reposition_period = sim::Duration{0};  // ablation: disabled
  start(cfg);
  (void)write_sync({devices[0], 0}, make_pattern(1, 1));
  sim.run_until(sim.now() + sim::seconds(20));  // drift accumulates
  // A stale prediction costs (most of) a rotation but stays correct.
  const auto data = make_pattern(1, 2);
  const io::BlockAddr addr{devices[0], 5};
  write_sync(addr, data);
  EXPECT_EQ(read_sync(addr, 1), data);
}

TEST_F(TrailDriverTest, LogFullStallsAndResumes) {
  // Tiny ring: reserve most tracks so only 4 usable remain... simpler: use
  // the full small disk but block write-backs by crashing... Instead:
  // throttle by filling the log faster than write-back drains using a slow
  // data disk profile.
  disk::DiskProfile slow = disk::small_test_disk();
  slow.command_overhead = sim::millis_f(30.0);  // very slow data disk
  data_disks.clear();
  data_disks.push_back(std::make_unique<disk::DiskDevice>(sim, slow));
  TrailConfig cfg;
  cfg.track_utilization_threshold = 0.0;   // new track after every write
  cfg.max_requests_per_physical = 1;       // no batching: one track per request
  start(cfg);
  int acked = 0;
  const int n = 120;  // > 77 usable tracks
  for (int i = 0; i < n; ++i)
    driver->submit_write({devices[0], static_cast<disk::Lba>(i * 2)}, 1,
                         make_pattern(1, i), [&] { ++acked; });
  while (acked < n) ASSERT_TRUE(sim.step());
  EXPECT_GE(driver->stats().log_full_stalls, 1u) << "ring should have filled";
  settle();
  verify_all_acknowledged_durable();
}

TEST_F(TrailDriverTest, UnmountStampsCleanAndRemountSkipsRecovery) {
  start();
  write_sync({devices[0], 10}, make_pattern(2, 1));
  driver->unmount();
  EXPECT_FALSE(driver->mounted());
  disk::SectorBuf sector{};
  log_disk->store().read(core::LogDiskLayout(log_disk->geometry()).header_lba(0), 1, sector);
  const auto hdr = core::parse_disk_header(sector);
  ASSERT_TRUE(hdr.has_value());
  EXPECT_EQ(hdr->crash_var, 1u);

  driver.reset();
  start();
  EXPECT_EQ(driver->epoch(), 2u);
  EXPECT_EQ(driver->last_recovery().records_found, 0u);
  verify_all_acknowledged_durable();
}

TEST_F(TrailDriverTest, DrainCompletesWhenQuiescent) {
  start();
  bool drained = false;
  driver->drain([&] { drained = true; });
  sim.run_until(sim.now() + sim::millis(5));
  EXPECT_TRUE(drained);
}

TEST_F(TrailDriverTest, StatsAreCoherent) {
  start();
  for (int i = 0; i < 10; ++i) {
    write_sync({devices[i % 2], static_cast<disk::Lba>(i * 3)}, make_pattern(2, i));
    sim.run_until(sim.now() + sim::millis(3));
  }
  settle();
  const auto& s = driver->stats();
  EXPECT_EQ(s.requests_logged, 10u);
  EXPECT_EQ(s.sectors_logged, 20u);
  EXPECT_GE(s.physical_log_writes, 1u);
  EXPECT_GE(s.records_written, s.physical_log_writes);
  EXPECT_EQ(s.writeback_sectors + 0u, 20u);
  EXPECT_EQ(driver->buffers().pending_records(), 0u);
  EXPECT_EQ(driver->log_queue_depth(), 0u);
}

TEST_F(TrailDriverTest, SerializeArenaStopsGrowingAfterWarmup) {
  // The append serialization path must be allocation-free at steady
  // state: the driver-owned arena grows until it has seen the largest
  // record image, then every further append reuses it. A growth counter
  // that keeps climbing means a per-append allocation crept back in.
  start();
  for (int i = 0; i < 4; ++i)
    write_sync({devices[0], static_cast<disk::Lba>(100 + i * 8)}, make_pattern(4, i));
  settle();
  const std::uint64_t grows_after_warmup = driver->serialize_arena_grows();
  EXPECT_GT(grows_after_warmup, 0u);
  for (int i = 0; i < 40; ++i)
    write_sync({devices[0], static_cast<disk::Lba>(400 + i * 8)}, make_pattern(4, 50 + i));
  settle();
  EXPECT_EQ(driver->serialize_arena_grows(), grows_after_warmup);
  // Larger batches may grow the arena a few more times (track splits
  // make record sizes vary), but growth is monotone and bounded by the
  // largest record image — steady-state large writes must stop growing.
  for (int i = 0; i < 6; ++i)
    write_sync({devices[0], static_cast<disk::Lba>(800 + i * 20)}, make_pattern(16, 7 + i));
  settle();
  const std::uint64_t grows_after_big = driver->serialize_arena_grows();
  for (int i = 0; i < 6; ++i)
    write_sync({devices[0], static_cast<disk::Lba>(1000 + i * 20)}, make_pattern(16, 80 + i));
  settle();
  EXPECT_EQ(driver->serialize_arena_grows(), grows_after_big);
}

TEST_F(TrailDriverTest, WriteBeforeMountThrows) {
  driver = std::make_unique<core::TrailDriver>(sim, *log_disk);
  (void)driver->add_data_disk(*data_disks[0]);
  EXPECT_THROW(
      driver->submit_write({io::DeviceId{3, 0}, 0}, 1, make_pattern(1, 0), {}),
      std::logic_error);
  driver->mount();
  EXPECT_THROW((void)driver->add_data_disk(*data_disks[1]), std::logic_error);
  EXPECT_THROW(driver->mount(), std::logic_error);  // double mount
}

TEST_F(TrailDriverTest, MountWithoutDataDisksThrows) {
  driver = std::make_unique<core::TrailDriver>(sim, *log_disk);
  EXPECT_THROW(driver->mount(), std::logic_error);
}

}  // namespace
}  // namespace trail::testing

// Log-disk layout and the formatting tool (§4.1).
//
// "The formatting tool writes the log disk's physical geometry data as
// well as the signature and crash variable to the dedicated tracks on the
// log disk, and resets the rest of the disk content to zero." The header
// is "replicated at several other places on the disk to improve the
// robustness"; we use three replica tracks (first, middle, last), each
// holding the log_disk_header in sector 0 and the geometry block in
// sector 1.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/log_format.hpp"
#include "disk/disk_device.hpp"

namespace trail::core {

class LogDiskLayout {
 public:
  explicit LogDiskLayout(const disk::Geometry& geometry);

  [[nodiscard]] int replica_count() const { return static_cast<int>(replica_tracks_.size()); }
  [[nodiscard]] disk::TrackId replica_track(int replica) const;
  [[nodiscard]] disk::Lba header_lba(int replica) const;
  [[nodiscard]] disk::Lba geometry_lba(int replica) const;

  /// Tracks the TrackAllocator must never hand out.
  [[nodiscard]] std::vector<disk::TrackId> reserved_tracks() const { return replica_tracks_; }

 private:
  const disk::Geometry& geometry_;
  std::vector<disk::TrackId> replica_tracks_;
};

/// mkfs.trail: offline formatting (direct platter access, not timed I/O).
/// Wipes the disk and stamps every replica with {epoch 0, crash_var 1}
/// (clean) plus the geometry block.
void format_log_disk(disk::DiskDevice& device);

/// True if the device carries a valid Trail log-disk format (any replica
/// parses). Offline check used by mount.
[[nodiscard]] bool is_trail_log_disk(const disk::DiskDevice& device);

/// Timed header update through the normal command path: writes the header
/// sector of every replica in sequence, then invokes `done`. Used at
/// mount (crash_var=0, epoch bumped) and clean unmount (crash_var=1).
void write_disk_headers(disk::DiskDevice& device, const LogDiskHeader& header,
                        std::function<void()> done);

/// Timed header read: tries replicas in order until one parses; invokes
/// `done` with the result (nullopt if every replica is damaged).
void read_disk_header(disk::DiskDevice& device,
                      std::function<void(std::optional<LogDiskHeader>)> done);

}  // namespace trail::core

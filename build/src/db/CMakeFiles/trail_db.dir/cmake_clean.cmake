file(REMOVE_RECURSE
  "CMakeFiles/trail_db.dir/btree.cpp.o"
  "CMakeFiles/trail_db.dir/btree.cpp.o.d"
  "CMakeFiles/trail_db.dir/buffer_pool.cpp.o"
  "CMakeFiles/trail_db.dir/buffer_pool.cpp.o.d"
  "CMakeFiles/trail_db.dir/database.cpp.o"
  "CMakeFiles/trail_db.dir/database.cpp.o.d"
  "CMakeFiles/trail_db.dir/lock_manager.cpp.o"
  "CMakeFiles/trail_db.dir/lock_manager.cpp.o.d"
  "CMakeFiles/trail_db.dir/page_file.cpp.o"
  "CMakeFiles/trail_db.dir/page_file.cpp.o.d"
  "CMakeFiles/trail_db.dir/table.cpp.o"
  "CMakeFiles/trail_db.dir/table.cpp.o.d"
  "CMakeFiles/trail_db.dir/wal.cpp.o"
  "CMakeFiles/trail_db.dir/wal.cpp.o.d"
  "libtrail_db.a"
  "libtrail_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trail_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_buffer_manager.
# This may be replaced when dependencies are built.

#include "db/buffer_pool.hpp"

#include <algorithm>
#include <stdexcept>

#include "audit/check.hpp"

namespace trail::db {

namespace {
/// CPU cost charged for a buffer-cache hit.
constexpr sim::Duration kHitDelay = sim::micros(1);
}  // namespace

BufferPool::BufferPool(sim::Simulator& sim, std::size_t capacity_pages, LogManager* wal)
    : sim_(sim), capacity_(capacity_pages), wal_(wal) {
  if (capacity_ == 0) throw std::invalid_argument("BufferPool: zero capacity");
}

std::uint32_t BufferPool::register_file(PageFile& file) {
  files_.push_back(&file);
  return static_cast<std::uint32_t>(files_.size() - 1);
}

void BufferPool::attach_obs(obs::Obs* obs) {
  obs_ = obs;
  if (obs_ == nullptr) {
    c_hits_ = c_misses_ = c_evictions_ = c_dirty_wb_ = nullptr;
    g_resident_ = nullptr;
    return;
  }
  c_hits_ = &obs_->metrics.counter("db.cache_hits");
  c_misses_ = &obs_->metrics.counter("db.cache_misses");
  c_evictions_ = &obs_->metrics.counter("db.evictions");
  c_dirty_wb_ = &obs_->metrics.counter("db.dirty_writebacks");
  g_resident_ = &obs_->metrics.gauge("db.resident_pages");
  obs_->tracer.set_track_name(obs::kDbCacheTid, "db.cache");
}

void BufferPool::touch(const FrameKey& key, Frame& frame) {
  lru_.erase(frame.lru_pos);
  lru_.push_front(key);
  frame.lru_pos = lru_.begin();
}

BufferPool::Frame& BufferPool::frame_at(std::uint32_t file_id, PageNo page) {
  auto it = frames_.find(FrameKey{file_id, page});
  if (it == frames_.end()) throw std::logic_error("BufferPool: page not resident");
  return *it->second;
}

void BufferPool::fetch(std::uint32_t file_id, PageNo page,
                       std::function<void(std::span<std::byte>)> use) {
  const FrameKey key{file_id, page};
  auto it = frames_.find(key);
  if (it != frames_.end()) {
    Frame& frame = *it->second;
    touch(key, frame);
    if (frame.loading) {
      frame.waiters.push_back(std::move(use));
      return;
    }
    ++stats_.hits;
    if (c_hits_ != nullptr) c_hits_->inc();
    // Charge a tiny CPU cost; run asynchronously to bound stack depth.
    Frame* fp = it->second.get();
    sim_.schedule(kHitDelay, [fp, use = std::move(use)] { use(fp->data); });
    return;
  }

  // Miss: allocate a frame and read the page.
  ++stats_.misses;
  if (c_misses_ != nullptr) c_misses_->inc();
  auto frame = std::make_unique<Frame>();
  frame->data.resize(kPageSize);
  frame->loading = true;
  frame->waiters.push_back(std::move(use));
  lru_.push_front(key);
  frame->lru_pos = lru_.begin();
  Frame* fp = frame.get();
  frames_.emplace(key, std::move(frame));
  maybe_evict();

  if (g_resident_ != nullptr) g_resident_->set(static_cast<std::int64_t>(frames_.size()));
  sim::TimePoint load_begin{};
  const bool traced = obs_ != nullptr && obs_->tracer.enabled();
  if (traced) load_begin = sim_.now();
  auto alive = alive_;
  files_.at(file_id)->read_page(page, fp->data, [this, alive, fp, traced, load_begin] {
    if (!*alive) return;
    if (traced && obs_ != nullptr && obs_->tracer.enabled())
      obs_->tracer.complete("db.page_load", "db", load_begin, sim_.now() - load_begin,
                            obs::kDbCacheTid);
    fp->loading = false;
    auto waiters = std::move(fp->waiters);
    fp->waiters.clear();
    for (auto& w : waiters) w(fp->data);
  });
}

void BufferPool::mark_dirty(std::uint32_t file_id, PageNo page) {
  Frame& f = frame_at(file_id, page);
  f.dirty = true;
  // WAL rule bookkeeping: everything logged so far (including the record
  // for this change — transactions append before applying) must reach
  // disk before this page may.
  if (wal_ != nullptr) f.flush_lsn = wal_->next_lsn();
}

void BufferPool::pin(std::uint32_t file_id, PageNo page) { ++frame_at(file_id, page).pins; }

void BufferPool::unpin(std::uint32_t file_id, PageNo page) {
  Frame& f = frame_at(file_id, page);
  if (f.pins == 0) throw std::logic_error("BufferPool: unpin of unpinned page");
  --f.pins;
}

void BufferPool::maybe_evict() {
  while (frames_.size() > capacity_) {
    // Scan from the LRU tail for an evictable frame.
    auto pos = lru_.end();
    Frame* victim = nullptr;
    FrameKey victim_key{};
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      auto fit = frames_.find(*it);
      Frame& f = *fit->second;
      if (f.pins > 0 || f.loading || f.flushing) continue;
      victim = &f;
      victim_key = *it;
      pos = std::next(it).base();
      break;
    }
    if (victim == nullptr) return;  // everything pinned/in-flight: soft cap

    if (!victim->dirty) {
      lru_.erase(pos);
      frames_.erase(victim_key);
      ++stats_.evictions;
      if (c_evictions_ != nullptr) c_evictions_->inc();
      if (g_resident_ != nullptr) g_resident_->set(static_cast<std::int64_t>(frames_.size()));
      continue;
    }
    // Dirty victim: honour the WAL rule, write it back, then drop it.
    ++stats_.dirty_writebacks;
    if (c_dirty_wb_ != nullptr) {
      c_dirty_wb_->inc();
      if (obs_->tracer.enabled())
        obs_->tracer.instant("db.evict_dirty", "db", obs::kDbCacheTid);
    }
    victim->flushing = true;
    Frame* fp = victim;
    const FrameKey key = victim_key;
    auto alive = alive_;
    auto write_page = [this, alive, fp, key] {
      if (!*alive) return;
      files_.at(key.file)->write_page(key.page, fp->data, [this, alive, fp, key] {
        if (!*alive) return;
        fp->flushing = false;
        fp->dirty = false;
        // Drop it now unless someone touched it meanwhile.
        auto it = frames_.find(key);
        if (it != frames_.end() && it->second.get() == fp && fp->pins == 0 && !fp->loading) {
          lru_.erase(fp->lru_pos);
          frames_.erase(it);
          ++stats_.evictions;
          if (c_evictions_ != nullptr) c_evictions_->inc();
          if (g_resident_ != nullptr) g_resident_->set(static_cast<std::int64_t>(frames_.size()));
        }
        maybe_evict();
      });
    };
    if (wal_ != nullptr)
      wal_->flush_until(fp->flush_lsn, write_page);
    else
      write_page();
    return;  // the rest of the eviction continues asynchronously
  }
}

void BufferPool::flush_dirty(std::function<void()> done) {
  auto pending = std::make_shared<std::size_t>(0);
  auto done_shared = std::make_shared<std::function<void()>>(std::move(done));
  for (auto& [key, frame] : frames_) {
    if (!frame->dirty || frame->pins > 0 || frame->loading || frame->flushing) continue;
    ++*pending;
    ++stats_.checkpoint_writes;
    Frame* fp = frame.get();
    fp->flushing = true;
    PageFile* file = files_.at(key.file);
    const PageNo page_no = key.page;
    auto alive = alive_;
    auto write_page = [alive, file, page_no, fp, pending, done_shared] {
      if (!*alive) return;
      file->write_page(page_no, fp->data, [alive, fp, pending, done_shared] {
        if (!*alive) return;
        fp->flushing = false;
        fp->dirty = false;
        if (--*pending == 0 && *done_shared) (*done_shared)();
      });
    };
    if (wal_ != nullptr)
      wal_->flush_until(fp->flush_lsn, write_page);
    else
      write_page();
  }
  if (*pending == 0 && *done_shared) (*done_shared)();
}

void BufferPool::reset() {
  // In-flight completions for dropped frames must become no-ops: swap the
  // liveness token.
  *alive_ = false;
  alive_ = std::make_shared<bool>(true);
  frames_.clear();
  lru_.clear();
}

void BufferPool::audit(audit::Report& report, bool quiescent) const {
  audit::Check& check = report.check("pool.frames");
  check.require(lru_.size() == frames_.size(), "LRU list and frame map disagree in size");
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    const auto fit = frames_.find(*it);
    if (!check.require(fit != frames_.end(), "LRU entry without a frame")) continue;
    check.require(fit->second->lru_pos == it, "frame's LRU position points elsewhere");
  }
  for (const auto& [key, frame] : frames_) {
    if (frame->dirty && wal_ != nullptr)
      check.require(frame->flush_lsn <= wal_->next_lsn(),
                    "dirty frame's WAL flush LSN beyond the append point");
    if (!frame->loading)
      check.require(frame->waiters.empty(), "fetch waiters on a frame that is not loading");
    if (quiescent) {
      check.require(frame->pins == 0, "pinned frame at a quiesce point");
      check.require(!frame->loading && !frame->flushing,
                    "frame I/O still in flight at a quiesce point");
    }
  }
}

std::size_t BufferPool::dirty_pages() const {
  std::size_t n = 0;
  for (const auto& [key, frame] : frames_)
    if (frame->dirty) ++n;
  return n;
}

}  // namespace trail::db

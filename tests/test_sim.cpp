#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace trail::sim {
namespace {

TEST(Time, DurationArithmetic) {
  EXPECT_EQ((millis(3) + micros(500)).ns(), 3'500'000);
  EXPECT_EQ((millis(3) - micros(500)).ns(), 2'500'000);
  EXPECT_EQ((millis(2) * 4).ns(), millis(8).ns());
  EXPECT_EQ((millis(8) / 4).ns(), millis(2).ns());
  EXPECT_EQ(millis(7) % millis(2), millis(1));
  EXPECT_EQ(millis(7) / millis(2), 3);
  EXPECT_LT(millis(1), millis(2));
  EXPECT_DOUBLE_EQ(millis(1).ms(), 1.0);
  EXPECT_DOUBLE_EQ(seconds(2).sec(), 2.0);
}

TEST(Time, TimePointArithmetic) {
  const TimePoint t{1'000'000};
  EXPECT_EQ((t + millis(1)).ns(), 2'000'000);
  EXPECT_EQ((t - micros(500)).ns(), 500'000);
  EXPECT_EQ(TimePoint{5'000} - TimePoint{2'000}, Duration{3'000});
}

TEST(Time, ToString) {
  EXPECT_EQ(to_string(millis_f(1.5)), "1.500 ms");
  EXPECT_EQ(to_string(micros(12)), "12.000 us");
  EXPECT_EQ(to_string(nanos(999)), "999 ns");
  EXPECT_EQ(to_string(seconds(3)), "3.000 s");
}

TEST(Simulator, DispatchesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(millis(3), [&] { order.push_back(3); });
  sim.schedule(millis(1), [&] { order.push_back(1); });
  sim.schedule(millis(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), TimePoint{millis(3).ns()});
}

TEST(Simulator, TieBreaksByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) sim.schedule(millis(1), [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule(millis(1), [&] {
    ++fired;
    sim.schedule(millis(1), [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now().ns(), millis(2).ns());
}

TEST(Simulator, CancelPreventsDispatch) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule(millis(1), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double-cancel reports failure
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, DoubleCancelAndCancelAfterFireKeepPendingConsistent) {
  Simulator sim;
  int fired = 0;
  const EventId keep = sim.schedule(millis(5), [&] { ++fired; });
  const EventId gone = sim.schedule(millis(1), [&] { ++fired; });
  EXPECT_EQ(sim.pending_events(), 2u);

  EXPECT_TRUE(sim.cancel(gone));
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_FALSE(sim.cancel(gone));  // double-cancel: reported, not double-counted
  EXPECT_FALSE(sim.cancel(gone));
  EXPECT_EQ(sim.pending_events(), 1u);

  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_FALSE(sim.cancel(keep));  // cancel after fire
  EXPECT_FALSE(sim.cancel(gone));  // cancel after cancelled event was retired
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, CancelOfStaleIdAfterSlotReuse) {
  Simulator sim;
  int fired = 0;
  const EventId first = sim.schedule(millis(1), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  // The new event may reuse the fired event's internal slot; the stale id
  // must not cancel it.
  const EventId second = sim.schedule(millis(1), [&] { ++fired; });
  EXPECT_FALSE(sim.cancel(first));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(second.valid());
}

TEST(Simulator, CancelOwnEventFromItsCallbackIsNoop) {
  Simulator sim;
  auto id = std::make_shared<EventId>();
  bool cancel_result = true;
  *id = sim.schedule(millis(1), [&, id] { cancel_result = sim.cancel(*id); });
  sim.run();
  EXPECT_FALSE(cancel_result);  // the event had already fired
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, RunUntilRetiresCancelledEventsWithoutFiring) {
  Simulator sim;
  int fired = 0;
  const EventId a = sim.schedule(millis(1), [&] { ++fired; });
  sim.schedule(millis(2), [&] { ++fired; });
  sim.schedule(millis(9), [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(a));
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.run_until(TimePoint{millis(3).ns()});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, ManyInterleavedCancelsStayDeterministic) {
  // The tombstoned queue must dispatch survivors in exactly (when, seq)
  // order regardless of cancellation pattern.
  Simulator sim;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i)
    ids.push_back(sim.schedule(millis(i % 10), [&order, i] { order.push_back(i); }));
  for (int i = 0; i < 100; i += 3) EXPECT_TRUE(sim.cancel(ids[static_cast<std::size_t>(i)]));
  sim.run();
  std::vector<int> expected;
  for (int t = 0; t < 10; ++t)
    for (int i = t; i < 100; i += 10)
      if (i % 3 != 0) expected.push_back(i);
  EXPECT_EQ(order, expected);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, HeavyCancellationCompactsQueueAndPreservesOrder) {
  // Cancelling most of a large queue triggers the O(n) heap compaction
  // sweep; survivors must still dispatch in exact (when, seq) order and
  // stale ids of swept-out entries must stay dead.
  Simulator sim;
  std::vector<int> order;
  std::vector<EventId> ids;
  constexpr int kEvents = 2000;
  for (int i = 0; i < kEvents; ++i)
    ids.push_back(sim.schedule(millis(i % 50), [&order, i] { order.push_back(i); }));
  // Cancel ~90%: well past the half-dead compaction threshold.
  for (int i = 0; i < kEvents; ++i) {
    if (i % 10 != 0) {
      EXPECT_TRUE(sim.cancel(ids[static_cast<std::size_t>(i)]));
    }
  }
  EXPECT_EQ(sim.pending_events(), static_cast<std::size_t>(kEvents / 10));
  // Swept-out entries retired their slots: re-cancel fails, and the ids
  // cannot kill events that reuse those slots.
  EXPECT_FALSE(sim.cancel(ids[1]));
  bool late_fired = false;
  sim.schedule(millis(60), [&] { late_fired = true; });
  EXPECT_FALSE(sim.cancel(ids[3]));
  sim.run();
  EXPECT_TRUE(late_fired);
  std::vector<int> expected;
  for (int t = 0; t < 50; ++t)
    for (int i = t; i < kEvents; i += 50)
      if (i % 10 == 0) expected.push_back(i);
  EXPECT_EQ(order, expected);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule(millis(1), [&] { ++fired; });
  sim.schedule(millis(5), [&] { ++fired; });
  sim.run_until(TimePoint{millis(2).ns()});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().ns(), millis(2).ns());  // clock advanced to the deadline
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  bool fired = false;
  sim.schedule(millis(-5), [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now().ns(), 0);
}

TEST(Simulator, EventLimitThrows) {
  Simulator sim;
  sim.set_event_limit(10);
  std::function<void()> loop = [&] { sim.schedule(millis(1), loop); };
  sim.schedule(millis(1), loop);
  EXPECT_THROW(sim.run(), SimulationOverrun);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.uniform(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(3, 3), 3);
}

TEST(Rng, UniformCoversRangeRoughlyEvenly) {
  Rng rng(123);
  std::vector<int> counts(10, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(rng.uniform(0, 9))];
  for (int c : counts) {
    EXPECT_GT(c, n / 10 * 0.9);
    EXPECT_LT(c, n / 10 * 1.1);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(99);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, WeightedRespectsWeights) {
  Rng rng(5);
  std::vector<double> weights{1.0, 3.0, 0.0};
  std::vector<int> counts(3, 0);
  const int n = 40'000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[0], 3.0, 0.3);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng b = a.split();
  // The split stream should not replay the parent stream.
  Rng a2(42);
  (void)a2.next();
  EXPECT_NE(b.next(), a2.next());
}

TEST(Rng, NurandStaysInRange) {
  Rng rng(11);
  for (int i = 0; i < 10'000; ++i) {
    const auto v = nurand(rng, 255, 1, 3000, 123);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3000);
  }
}

TEST(Summary, BasicStatistics) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 5.0);
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
}

TEST(Summary, ThrowsOnEmpty) {
  Summary s;
  EXPECT_THROW((void)s.mean(), std::logic_error);
  EXPECT_THROW((void)s.percentile(50), std::logic_error);
}

TEST(Summary, PercentileNearestRankEdgeCases) {
  Summary s;
  for (double v : {10.0, 20.0, 30.0, 40.0}) s.add(v);
  // p=0 is the minimum, p=100 the maximum — both exact, never an index
  // off either end of the sorted sample vector.
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  // Out-of-range p clamps rather than indexing out of bounds.
  EXPECT_DOUBLE_EQ(s.percentile(-5), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(250), 40.0);
  // Nearest-rank interior points: ceil(p/100 * 4) picks the sample.
  EXPECT_DOUBLE_EQ(s.percentile(25), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(26), 20.0);
  EXPECT_DOUBLE_EQ(s.percentile(75), 30.0);
  EXPECT_DOUBLE_EQ(s.percentile(76), 40.0);
  EXPECT_THROW((void)s.percentile(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
}

TEST(Summary, PercentileSingleSample) {
  Summary s;
  s.add(7.5);
  for (double p : {0.0, 0.001, 50.0, 99.0, 100.0}) EXPECT_DOUBLE_EQ(s.percentile(p), 7.5);
}

TEST(Summary, AddDurationUsesMilliseconds) {
  Summary s;
  s.add(millis(2));
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

}  // namespace
}  // namespace trail::sim

// One observability context shared across a stack's layers.
//
// A single Obs owns the metrics registry and the event tracer; the
// driver, device queues, WAL, buffer pool and recovery all hold a
// nullable `Obs*` (attach_obs) so uninstrumented construction costs
// nothing and instrumented construction is one pointer assignment.
//
// Lane (tid) assignments for trace presentation — see set_track_name
// defaults applied by TrailDriver::attach_obs:
//   0..14   log units ("log0"..)
//   16..    data disks ("data0"..)
//   32      driver-level lane (log queue depth, stalls)
//   33      recovery
//   40      WAL
//   41      DB buffer pool
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace trail::obs {

inline constexpr std::uint32_t kDataDiskTidBase = 16;
inline constexpr std::uint32_t kDriverTid = 32;
inline constexpr std::uint32_t kRecoveryTid = 33;
inline constexpr std::uint32_t kWalTid = 40;
inline constexpr std::uint32_t kDbCacheTid = 41;

struct Obs {
  explicit Obs(const sim::Simulator& sim, std::size_t trace_capacity = 1 << 16)
      : tracer(sim, trace_capacity) {}

  MetricsRegistry metrics;
  EventTracer tracer;
};

}  // namespace trail::obs

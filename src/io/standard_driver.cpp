#include "io/standard_driver.hpp"

namespace trail::io {

namespace {
constexpr std::uint8_t kDataDiskMajor = 3;
}

DeviceId StandardDriver::add_device(disk::DiskDevice& device) {
  auto scheduler = scheduling_ == Scheduling::kClook ? make_clook_scheduler()
                                                     : make_fifo_scheduler();
  queues_.push_back(std::make_unique<DeviceQueue>(device, std::move(scheduler)));
  return DeviceId{kDataDiskMajor, static_cast<std::uint8_t>(queues_.size() - 1)};
}

std::size_t StandardDriver::index_of(DeviceId id) const {
  if (id.major() != kDataDiskMajor || id.minor() >= queues_.size())
    throw std::out_of_range("StandardDriver: unknown device");
  return id.minor();
}

void StandardDriver::submit_write(BlockAddr addr, std::uint32_t count,
                                  std::span<const std::byte> data, Completion cb) {
  PendingIo io;
  io.is_write = true;
  io.lba = addr.lba;
  io.count = count;
  io.data.assign(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(count) * disk::kSectorSize);
  io.on_complete = std::move(cb);
  queues_.at(index_of(addr.device))->submit(std::move(io));
}

void StandardDriver::submit_read(BlockAddr addr, std::uint32_t count, std::span<std::byte> out,
                                 Completion cb) {
  PendingIo io;
  io.is_write = false;
  io.lba = addr.lba;
  io.count = count;
  io.out = out;
  io.on_complete = std::move(cb);
  queues_.at(index_of(addr.device))->submit(std::move(io));
}

void StandardDriver::drain(Completion cb) {
  // All writes are synchronous; once every queue is idle we are drained.
  auto all_idle = [this] {
    for (const auto& q : queues_)
      if (!q->idle()) return false;
    return true;
  };
  if (all_idle()) {
    if (cb) cb();
    return;
  }
  // Share the callback across queues; first idle notification that finds
  // everything idle fires it (then disarms).
  auto fired = std::make_shared<bool>(false);
  auto cb_shared = std::make_shared<Completion>(std::move(cb));
  for (auto& q : queues_) {
    q->set_idle_callback([this, all_idle, fired, cb_shared] {
      if (*fired || !all_idle()) return;
      *fired = true;
      // Keep the completion alive on the stack: disarming the queues
      // below destroys this very lambda (we are one of the idle
      // callbacks), so captures must not be touched afterwards.
      const auto cb_local = cb_shared;
      for (auto& qq : queues_) qq->set_idle_callback({});
      if (*cb_local) (*cb_local)();
    });
  }
}

}  // namespace trail::io

// trail::audit tests: the Check/Report substrate, the offline log
// verifier (fsck.trail) against clean and deliberately corrupted images,
// the hardened log_format bounds checks, and the runtime quiesce-point
// audits on the driver and the database engine.
//
// The corruption table bit-flips every §3.2 header field class — magic
// byte, signature, epoch, prev_sect, log_head, entry array, payload — and
// asserts both that verify_log attributes the damage to the right check
// and that LogScanner/recovery reject the image cleanly (a thrown
// std::runtime_error or a reduced record count; never silent adoption).
#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>

#include "audit/check.hpp"
#include "audit/log_verifier.hpp"
#include "core/log_format.hpp"
#include "core/log_scanner.hpp"
#include "db/database.hpp"
#include "io/standard_driver.hpp"
#include "trail_fixture.hpp"

namespace trail::testing {
namespace {

using audit::Finding;
using audit::Report;
using audit::Severity;
using audit::VerifyOptions;

// ---------------------------------------------------------------- Check

TEST(AuditCheck, CountsAndFindings) {
  Report report;
  audit::Check& c = report.check("demo");
  c.pass(3);
  c.fail("broken", 17);
  c.fail("iffy", Finding::kNoLba, Severity::kWarning);
  EXPECT_TRUE(c.require(true, "holds"));
  EXPECT_FALSE(c.require(false, "does not hold", 4));

  EXPECT_EQ(c.passes(), 4u);
  EXPECT_EQ(c.errors(), 2u);
  EXPECT_EQ(c.warnings(), 1u);
  EXPECT_FALSE(c.ok());
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.total_errors(), 2u);
  EXPECT_EQ(report.total_warnings(), 1u);
  ASSERT_EQ(c.findings().size(), 3u);
  EXPECT_EQ(c.findings()[0].lba, 17u);

  const std::string dump = report.to_string();
  EXPECT_NE(dump.find("demo: FAIL"), std::string::npos);
  EXPECT_NE(dump.find("@lba 17"), std::string::npos);
  // Same-named check resolves to the same instance.
  EXPECT_EQ(&report.check("demo"), &c);
}

TEST(AuditCheck, FindingStorageIsBounded) {
  Report report;
  audit::Check& c = report.check("flood");
  for (int i = 0; i < 100; ++i) c.fail("finding", static_cast<std::uint64_t>(i));
  EXPECT_EQ(c.errors(), 100u);
  EXPECT_EQ(c.findings().size(), audit::Check::kMaxStoredFindings);
  EXPECT_NE(report.to_string().find("further findings not stored"), std::string::npos);
}

TEST(AuditCheck, RecordsToMetrics) {
  Report report;
  report.check("x").pass(5);
  report.check("x").fail("bad");
  obs::MetricsRegistry metrics;
  report.record_to(metrics);
  const std::string json = metrics.to_json();
  EXPECT_NE(json.find("audit.x.pass"), std::string::npos);
  EXPECT_NE(json.find("audit.x.fail"), std::string::npos);
}

// ------------------------------------------- log_format bounds hardening

TEST(LogFormatBounds, SerializersRejectShortSectors) {
  std::vector<std::byte> shorty(disk::kSectorSize - 1);
  EXPECT_THROW(core::serialize_disk_header({1, 1, 0}, shorty), std::invalid_argument);

  const disk::DiskProfile p = disk::small_test_disk();
  EXPECT_THROW(core::serialize_geometry(p.geometry, p.rpm, shorty), std::invalid_argument);

  core::RecordHeader hdr;
  hdr.batch_size = 1;
  hdr.entries.resize(1);
  hdr.entries[0].log_lba = 10;
  EXPECT_THROW(core::serialize_record_header(hdr, shorty), std::invalid_argument);

  EXPECT_THROW((void)core::escape_payload_sector(shorty), std::invalid_argument);
  EXPECT_THROW(core::unescape_payload_sector(shorty, 0x42), std::invalid_argument);
}

TEST(LogFormatBounds, ParsersRejectShortSectors) {
  // A truncated buffer must yield nullopt, not an out-of-bounds read of
  // the CRC window (the regression this guards: sector_crc_excluding
  // copied a full sector unconditionally).
  disk::SectorBuf full{};
  core::serialize_disk_header({3, 0, 7}, full);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, disk::kSectorSize - 1}) {
    const std::span<const std::byte> shorty(full.data(), n);
    EXPECT_FALSE(core::parse_disk_header(shorty).has_value()) << n;
    EXPECT_FALSE(core::parse_record_header(shorty).has_value()) << n;
    EXPECT_FALSE(core::parse_geometry(shorty).has_value()) << n;
  }
}

// ---------------------------------------------------- offline verifier

class AuditVerifierTest : public TrailFixture {
 protected:
  static constexpr int kRecords = 5;

  AuditVerifierTest() : TrailFixture(2) {}

  /// Run kRecords writes in epoch 1, crash with them pending, and return
  /// the scanned records sorted oldest -> youngest.
  auto prepare_crashed_log() {
    start();
    for (auto& d : data_disks) d->crash_halt();
    for (int i = 0; i < kRecords; ++i)
      write_sync({devices[0], static_cast<disk::Lba>(i * 4)}, make_pattern(2, i));
    driver->crash();
    driver.reset();
    const core::LogScanner scanner(*log_disk);
    auto records = scanner.records_of_epoch(1);
    EXPECT_EQ(records.size(), static_cast<std::size_t>(kRecords));
    return records;
  }

  /// Raw bit-flip inside the sector at `lba`.
  void flip(disk::Lba lba, std::size_t offset, std::byte mask) {
    disk::SectorBuf sector{};
    log_disk->store().read(lba, 1, sector);
    sector[offset] ^= mask;
    log_disk->store().write(lba, 1, sector);
  }

  /// Parse the record header at `lba`, mutate a field, and write it back
  /// re-serialized (header CRC valid again: the corruption is semantic).
  void reserialize(disk::Lba lba, const std::function<void(core::RecordHeader&)>& fn) {
    disk::SectorBuf sector{};
    log_disk->store().read(lba, 1, sector);
    auto hdr = core::parse_record_header(sector);
    ASSERT_TRUE(hdr.has_value());
    fn(*hdr);
    core::serialize_record_header(*hdr, sector);
    log_disk->store().write(lba, 1, sector);
  }

  /// The image must scan without throwing, whatever state it is in.
  void expect_scanner_survives() {
    const core::LogScanner scanner(*log_disk);
    EXPECT_NO_THROW((void)scanner.scan());
  }

  /// Reboot + mount. Returns the recovered record count, or nullopt if
  /// recovery rejected the image with std::runtime_error.
  std::optional<std::uint32_t> remount_records() {
    log_disk->restart();
    for (auto& d : data_disks) d->restart();
    auto fresh = std::make_unique<core::TrailDriver>(sim, *log_disk);
    for (auto& d : data_disks) (void)fresh->add_data_disk(*d);
    try {
      fresh->mount();
    } catch (const std::runtime_error&) {
      return std::nullopt;
    }
    const std::uint32_t found = fresh->last_recovery().records_found;
    fresh->unmount();
    return found;
  }
};

TEST_F(AuditVerifierTest, FreshFormatIsClean) {
  const Report report = audit::verify_log(*log_disk);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.total_warnings(), 0u) << report.to_string();
}

TEST_F(AuditVerifierTest, CrashedImageHasNoErrors) {
  prepare_crashed_log();
  const Report report = audit::verify_log(*log_disk);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_F(AuditVerifierTest, CleanUnmountedImageIsClean) {
  start();
  for (int i = 0; i < 4; ++i)
    write_sync({devices[1], static_cast<disk::Lba>(i * 8)}, make_pattern(2, 40 + i));
  settle();
  driver->unmount();
  driver.reset();
  const Report report = audit::verify_log(*log_disk);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_F(AuditVerifierTest, UnformattedImageFailsHeaderCheck) {
  disk::DiskDevice raw(sim, disk::small_test_disk());
  Report report = audit::verify_log(raw);
  EXPECT_FALSE(report.ok());
  EXPECT_GT(report.check("log.disk_header").errors(), 0u);
}

// ---- the corruption table: one §3.2 header field class per test ----

TEST_F(AuditVerifierTest, CorruptMagicByteDetected) {
  const auto records = prepare_crashed_log();
  flip(records[2].header_lba, 0, std::byte{0xA5});  // 0xFF -> 0x5A

  Report report = audit::verify_log(*log_disk);
  EXPECT_GT(report.check("log.sector_classes").errors(), 0u) << report.to_string();
  expect_scanner_survives();
  // The chain from the youngest runs into the destroyed header.
  EXPECT_EQ(remount_records(), std::nullopt);
}

TEST_F(AuditVerifierTest, CorruptSignatureDetected) {
  const auto records = prepare_crashed_log();
  flip(records[2].header_lba, 3, std::byte{0xFF});  // signature byte

  Report report = audit::verify_log(*log_disk);
  EXPECT_GT(report.check("log.sector_classes").errors(), 0u) << report.to_string();
  expect_scanner_survives();
  EXPECT_EQ(remount_records(), std::nullopt);
}

TEST_F(AuditVerifierTest, CorruptEpochDetected) {
  const auto records = prepare_crashed_log();
  reserialize(records[2].header_lba,
              [](core::RecordHeader& h) { h.epoch += 7; });

  Report report = audit::verify_log(*log_disk);
  EXPECT_GT(report.check("log.chain").errors(), 0u) << report.to_string();
  expect_scanner_survives();
  // The walk from the youngest epoch-1 record meets an epoch-8 header.
  EXPECT_EQ(remount_records(), std::nullopt);
}

TEST_F(AuditVerifierTest, CorruptPrevSectDetected) {
  const auto records = prepare_crashed_log();
  const auto unwritten =
      static_cast<std::uint32_t>(log_disk->geometry().total_sectors() - 5);
  reserialize(records.back().header_lba,
              [&](core::RecordHeader& h) { h.prev_sect = core::encode_log_ptr(0, unwritten); });

  Report report = audit::verify_log(*log_disk);
  EXPECT_GT(report.check("log.chain").errors(), 0u) << report.to_string();
  expect_scanner_survives();
  EXPECT_EQ(remount_records(), std::nullopt);
}

TEST_F(AuditVerifierTest, CorruptLogHeadDetected) {
  const auto records = prepare_crashed_log();
  const auto unwritten =
      static_cast<std::uint32_t>(log_disk->geometry().total_sectors() - 5);
  reserialize(records.back().header_lba,
              [&](core::RecordHeader& h) { h.log_head = core::encode_log_ptr(0, unwritten); });

  Report report = audit::verify_log(*log_disk);
  EXPECT_GT(report.check("log.chain").errors(), 0u) << report.to_string();
  expect_scanner_survives();
  // Recovery walks to the prev_sect sentinel and stops: it still finds
  // every record, it just could not use the bound. Legal, if untidy.
  const auto found = remount_records();
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, static_cast<std::uint32_t>(kRecords));
}

TEST_F(AuditVerifierTest, CorruptEntryArrayDetected) {
  const auto records = prepare_crashed_log();
  reserialize(records[2].header_lba,
              [](core::RecordHeader& h) { h.entries[1].log_lba += 1; });

  Report report = audit::verify_log(*log_disk);
  EXPECT_GT(report.check("log.record_entries").errors(), 0u) << report.to_string();
  expect_scanner_survives();
  // Replay applies payload bytes it already read contiguously, so the
  // poisoned pointer array does not break recovery itself.
  const auto found = remount_records();
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, static_cast<std::uint32_t>(kRecords));
}

TEST_F(AuditVerifierTest, CorruptChainPayloadDetected) {
  const auto records = prepare_crashed_log();
  flip(records[2].header_lba + 1, 100, std::byte{0x01});  // on-chain payload

  Report report = audit::verify_log(*log_disk);
  EXPECT_GT(report.check("log.payload_crc").errors(), 0u) << report.to_string();
  expect_scanner_survives();
  // A torn record below an intact one is impossible in a legal crash.
  EXPECT_EQ(remount_records(), std::nullopt);
}

TEST_F(AuditVerifierTest, TornTailIsLegalButReportable) {
  const auto records = prepare_crashed_log();
  flip(records.back().header_lba + 1, 64, std::byte{0x80});  // youngest payload

  Report lenient = audit::verify_log(*log_disk);
  EXPECT_TRUE(lenient.ok()) << lenient.to_string();
  EXPECT_GT(lenient.check("log.payload_crc").warnings(), 0u);

  VerifyOptions strict;
  strict.allow_torn_tail = false;
  Report hard = audit::verify_log(*log_disk, strict);
  EXPECT_GT(hard.check("log.payload_crc").errors(), 0u);

  // Recovery drops the torn youngest and keeps the rest.
  const auto found = remount_records();
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, static_cast<std::uint32_t>(kRecords - 1));
}

TEST_F(AuditVerifierTest, DuplicateRecordKeyDetected) {
  const auto records = prepare_crashed_log();
  const std::uint32_t newest_seq = records.back().header.sequence_id;
  reserialize(records[2].header_lba,
              [&](core::RecordHeader& h) { h.sequence_id = newest_seq; });

  Report report = audit::verify_log(*log_disk);
  EXPECT_GT(report.check("log.record_keys").errors(), 0u) << report.to_string();
  expect_scanner_survives();
  // Depending on which duplicate the locator anchors on, recovery either
  // trips the key-monotonicity guard or truncates the chain early; it
  // must never adopt all records as if the image were healthy.
  const auto found = remount_records();
  if (found.has_value()) {
    EXPECT_LT(*found, static_cast<std::uint32_t>(kRecords));
  }
}

// ------------------------------------------------------ runtime audits

class AuditRuntimeTest : public TrailFixture {
 protected:
  AuditRuntimeTest() : TrailFixture(2) {}
};

TEST_F(AuditRuntimeTest, DriverAuditCleanAfterMount) {
  start();
  Report report;
  driver->run_audit(report, /*quiescent=*/true);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_F(AuditRuntimeTest, DriverAuditCleanDuringAndAfterTraffic) {
  start();
  for (int i = 0; i < 8; ++i)
    write_sync({devices[i % 2], static_cast<disk::Lba>(i * 4)}, make_pattern(2, i));
  Report busy;
  driver->run_audit(busy, /*quiescent=*/false);
  EXPECT_TRUE(busy.ok()) << busy.to_string();

  settle();
  Report quiet;
  driver->run_audit(quiet, /*quiescent=*/true);
  EXPECT_TRUE(quiet.ok()) << quiet.to_string();
  EXPECT_GT(quiet.check("store.chunks").passes(), 0u);
  EXPECT_GT(quiet.check("buffer.state").passes(), 0u);
}

TEST_F(AuditRuntimeTest, DriverAuditCleanAfterRecovery) {
  start();
  for (auto& d : data_disks) d->crash_halt();
  for (int i = 0; i < 4; ++i)
    write_sync({devices[0], static_cast<disk::Lba>(i * 4)}, make_pattern(2, i));
  crash_and_remount();
  Report report;
  driver->run_audit(report, /*quiescent=*/true);
  EXPECT_TRUE(report.ok()) << report.to_string();
  verify_all_acknowledged_durable();
}

TEST(AuditDatabase, EngineAuditCleanAroundCheckpoint) {
  sim::Simulator sim;
  io::StandardDriver driver;
  disk::DiskDevice log_dev(sim, disk::small_test_disk());
  disk::DiskDevice data_dev(sim, disk::small_test_disk());
  const io::DeviceId log_id = driver.add_device(log_dev);
  const io::DeviceId data_id = driver.add_device(data_dev);

  db::DbConfig cfg;
  cfg.buffer_pool_pages = 8;
  cfg.log_region_sectors = 512;
  cfg.checkpoint_every_bytes = 0;
  db::Database db(sim, driver, log_id, cfg);
  db.attach_device(log_id, log_dev);
  db.attach_device(data_id, data_dev);
  const db::TableId items = db.create_table("items", 64, 200, data_id);

  auto pump = [&](const bool& flag) {
    while (!flag) ASSERT_TRUE(sim.step()) << "simulation stalled";
  };
  for (int i = 0; i < 10; ++i) {
    db::Txn& txn = db.begin();
    db::RowBuf row(64, std::byte(static_cast<std::uint8_t>(i)));
    bool put = false;
    txn.update(items, static_cast<db::Key>(i), row, [&](bool ok) {
      ASSERT_TRUE(ok);
      put = true;
    });
    pump(put);
    bool committed = false;
    db.commit(txn, [&](bool ok) {
      ASSERT_TRUE(ok);
      committed = true;
    });
    pump(committed);

    Report mid;
    db.run_audit(mid, /*quiescent=*/false);
    EXPECT_TRUE(mid.ok()) << mid.to_string();
  }

  bool checked = false;
  db.checkpoint([&] { checked = true; });
  pump(checked);
  Report report;
  db.run_audit(report, /*quiescent=*/true);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.check("wal.sequence").passes(), 0u);
  EXPECT_GT(report.check("pool.frames").passes(), 0u);
}

}  // namespace
}  // namespace trail::testing

# Empty compiler generated dependencies file for trail_tpcc.
# This may be replaced when dependencies are built.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "disk/disk_device.hpp"
#include "disk/profile.hpp"
#include "io/device_queue.hpp"
#include "io/scheduler.hpp"
#include "io/standard_driver.hpp"
#include "sim/random.hpp"

namespace trail::io {
namespace {

PendingIo make_write(disk::Lba lba, std::function<void()> cb = {}, int priority = 0) {
  PendingIo io;
  io.is_write = true;
  io.lba = lba;
  io.count = 1;
  io.data.assign(disk::kSectorSize, std::byte{0x5A});
  io.priority = priority;
  io.on_complete = std::move(cb);
  return io;
}

TEST(FifoScheduler, PopsInSubmissionOrder) {
  auto sched = make_fifo_scheduler();
  for (std::uint64_t i = 0; i < 5; ++i) {
    PendingIo io = make_write(100 - i);
    io.seq = i;
    sched->push(std::move(io));
  }
  EXPECT_EQ(sched->size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    const PendingIo io = sched->pop_next(/*head=*/0);
    EXPECT_EQ(io.seq, i);
  }
  EXPECT_TRUE(sched->empty());
}

TEST(FifoScheduler, PriorityClassesDrainInOrder) {
  auto sched = make_fifo_scheduler();
  PendingIo low = make_write(1, {}, /*priority=*/1);
  low.seq = 0;
  sched->push(std::move(low));
  PendingIo high = make_write(2, {}, /*priority=*/0);
  high.seq = 1;
  sched->push(std::move(high));
  EXPECT_EQ(sched->pop_next(0).priority, 0) << "reads (class 0) before writes (class 1)";
  EXPECT_EQ(sched->pop_next(0).priority, 1);
}

TEST(ClookScheduler, ServesAscendingFromHeadThenWraps) {
  auto sched = make_clook_scheduler();
  for (const disk::Lba lba : {50u, 10u, 70u, 30u, 90u}) sched->push(make_write(lba));
  // Head at 40: expect 50, 70, 90, then wrap to 10, 30.
  std::vector<disk::Lba> order;
  while (!sched->empty()) order.push_back(sched->pop_next(40).lba);
  EXPECT_EQ(order, (std::vector<disk::Lba>{50, 70, 90, 10, 30}));
}

TEST(ClookScheduler, ExactHeadPositionIncluded) {
  auto sched = make_clook_scheduler();
  sched->push(make_write(40));
  sched->push(make_write(39));
  EXPECT_EQ(sched->pop_next(40).lba, 40u);
  EXPECT_EQ(sched->pop_next(40).lba, 39u);
}

class DeviceQueueTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  disk::DiskDevice dev{sim, disk::small_test_disk()};
};

TEST_F(DeviceQueueTest, DispatchesOneAtATime) {
  DeviceQueue queue(dev, make_fifo_scheduler());
  int done = 0;
  for (int i = 0; i < 4; ++i) queue.submit(make_write(static_cast<disk::Lba>(i * 10),
                                                      [&done] { ++done; }));
  EXPECT_EQ(queue.queued(), 3u) << "one on the device, three queued";
  sim.run();
  EXPECT_EQ(done, 4);
  EXPECT_TRUE(queue.idle());
}

TEST_F(DeviceQueueTest, CancelledRequestSkippedButCompletes) {
  DeviceQueue queue(dev, make_fifo_scheduler());
  bool blocker_done = false, skipped_done = false;
  queue.submit(make_write(0, [&] { blocker_done = true; }));
  PendingIo io = make_write(50, [&] { skipped_done = true; });
  io.cancelled = [] { return true; };
  queue.submit(std::move(io));
  sim.run();
  EXPECT_TRUE(blocker_done);
  EXPECT_TRUE(skipped_done) << "skip path must still fire the completion";
  EXPECT_FALSE(dev.store().is_written(50)) << "cancelled write must not reach the disk";
}

TEST_F(DeviceQueueTest, MaterializeProvidesDataAtDispatch) {
  DeviceQueue queue(dev, make_fifo_scheduler());
  PendingIo io;
  io.is_write = true;
  io.lba = 7;
  io.count = 1;
  io.materialize = [] {
    return std::vector<std::byte>(disk::kSectorSize, std::byte{0xAB});
  };
  queue.submit(std::move(io));
  sim.run();
  std::vector<std::byte> got(disk::kSectorSize);
  dev.store().read(7, 1, got);
  EXPECT_EQ(got[10], std::byte{0xAB});
}

TEST_F(DeviceQueueTest, IdleCallbackFires) {
  DeviceQueue queue(dev, make_fifo_scheduler());
  int idle_calls = 0;
  queue.set_idle_callback([&] { ++idle_calls; });
  queue.submit(make_write(0));
  queue.submit(make_write(10));
  sim.run();
  EXPECT_EQ(idle_calls, 1);
}

class StandardDriverTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  disk::DiskDevice d0{sim, disk::small_test_disk()};
  disk::DiskDevice d1{sim, disk::small_test_disk()};
  StandardDriver driver;
};

TEST_F(StandardDriverTest, WriteReadRoundTripAcrossDevices) {
  const DeviceId id0 = driver.add_device(d0);
  const DeviceId id1 = driver.add_device(d1);
  std::vector<std::byte> a(disk::kSectorSize, std::byte{1});
  std::vector<std::byte> b(disk::kSectorSize, std::byte{2});
  int done = 0;
  driver.submit_write({id0, 5}, 1, a, [&] { ++done; });
  driver.submit_write({id1, 5}, 1, b, [&] { ++done; });
  sim.run();
  EXPECT_EQ(done, 2);
  std::vector<std::byte> out(disk::kSectorSize);
  bool read_done = false;
  driver.submit_read({id1, 5}, 1, out, [&] { read_done = true; });
  sim.run();
  EXPECT_TRUE(read_done);
  EXPECT_EQ(out, b);
}

TEST_F(StandardDriverTest, UnknownDeviceThrows) {
  (void)driver.add_device(d0);
  std::vector<std::byte> buf(disk::kSectorSize);
  EXPECT_THROW(driver.submit_write({DeviceId{3, 9}, 0}, 1, buf, {}), std::out_of_range);
  EXPECT_THROW(driver.submit_read({DeviceId{7, 0}, 0}, 1, buf, {}), std::out_of_range);
}

TEST_F(StandardDriverTest, DrainWaitsForAllQueues) {
  const DeviceId id0 = driver.add_device(d0);
  const DeviceId id1 = driver.add_device(d1);
  std::vector<std::byte> data(disk::kSectorSize, std::byte{3});
  for (int i = 0; i < 3; ++i) {
    driver.submit_write({id0, static_cast<disk::Lba>(i * 8)}, 1, data, {});
    driver.submit_write({id1, static_cast<disk::Lba>(i * 8)}, 1, data, {});
  }
  bool drained = false;
  driver.drain([&] { drained = true; });
  EXPECT_FALSE(drained);
  sim.run();
  EXPECT_TRUE(drained);
  // Drain on an idle driver completes immediately.
  bool again = false;
  driver.drain([&] { again = true; });
  EXPECT_TRUE(again);
}

TEST_F(StandardDriverTest, ElevatorReducesSeekVersusFifo) {
  // Property: with a backlog of random writes, C-LOOK's total service time
  // is below FIFO's on the same workload.
  auto run_with = [](StandardDriver::Scheduling sched) {
    sim::Simulator sim;
    disk::DiskDevice dev(sim, disk::wd_caviar_10g());
    StandardDriver driver(sched);
    const DeviceId id = driver.add_device(dev);
    sim::Rng rng(77);
    std::vector<std::byte> data(disk::kSectorSize, std::byte{9});
    int done = 0;
    const int n = 60;
    for (int i = 0; i < n; ++i) {
      driver.submit_write(
          {id, static_cast<disk::Lba>(
                   rng.uniform(0, static_cast<std::int64_t>(dev.geometry().total_sectors()) - 2))},
          1, data, [&done] { ++done; });
    }
    sim.run();
    EXPECT_EQ(done, n);
    return dev.stats().seek;
  };
  const auto fifo_seek = run_with(StandardDriver::Scheduling::kFifo);
  const auto clook_seek = run_with(StandardDriver::Scheduling::kClook);
  EXPECT_LT(clook_seek.ns(), fifo_seek.ns() / 2)
      << "elevator should at least halve total seek time on a 60-deep backlog";
}

}  // namespace
}  // namespace trail::io

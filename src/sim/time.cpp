#include "sim/time.hpp"

#include <cmath>
#include <cstdio>

namespace trail::sim {

namespace {

std::string format_ns(std::int64_t ns) {
  char buf[64];
  const double a = std::abs(static_cast<double>(ns));
  if (a >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.3f s", static_cast<double>(ns) / 1e9);
  } else if (a >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3f ms", static_cast<double>(ns) / 1e6);
  } else if (a >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.3f us", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%lld ns", static_cast<long long>(ns));
  }
  return buf;
}

}  // namespace

std::string to_string(Duration d) { return format_ns(d.ns()); }
std::string to_string(TimePoint t) { return format_ns(t.ns()); }

}  // namespace trail::sim

file(REMOVE_RECURSE
  "libtrail_sim.a"
)

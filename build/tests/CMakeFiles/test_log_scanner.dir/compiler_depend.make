# Empty compiler generated dependencies file for test_log_scanner.
# This may be replaced when dependencies are built.

// log_inspector: fsck.trail — builds a Trail deployment, runs a small
// mixed workload, crashes it, and then walks the raw log disk with the
// offline scanner: sector census, per-epoch record counts, utilization
// histogram, chain verification, and a dump of the live records. A guided
// tour of the self-describing on-disk format of §3.2.

#include <cstdio>

#include "core/format_tool.hpp"
#include "core/log_scanner.hpp"
#include "core/trail_driver.hpp"
#include "disk/profile.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

using namespace trail;

int main() {
  sim::Simulator simulator;
  disk::DiskDevice log_disk(simulator, disk::small_test_disk());
  disk::DiskDevice data_disk(simulator, disk::wd_caviar_10g());
  core::format_log_disk(log_disk);

  // Session 1: clean workload + unmount.
  {
    core::TrailDriver driver(simulator, log_disk);
    const io::DeviceId dev = driver.add_data_disk(data_disk);
    driver.mount();
    sim::Rng rng(1);
    std::vector<std::byte> block(2 * disk::kSectorSize, std::byte{0x11});
    for (int i = 0; i < 10; ++i) {
      bool done = false;
      driver.submit_write({dev, static_cast<disk::Lba>(rng.uniform(0, 5000)) * 2}, 2, block,
                          [&] { done = true; });
      while (!done) simulator.step();
    }
    driver.unmount();
  }
  // Session 2: workload that crashes with pending records.
  auto driver = std::make_unique<core::TrailDriver>(simulator, log_disk);
  const io::DeviceId dev = driver->add_data_disk(data_disk);
  driver->mount();
  data_disk.crash_halt();  // block write-back: records stay live
  {
    sim::Rng rng(2);
    std::vector<std::byte> block(3 * disk::kSectorSize, std::byte{0x22});
    for (int i = 0; i < 6; ++i) {
      bool done = false;
      driver->submit_write({dev, static_cast<disk::Lba>(rng.uniform(0, 5000)) * 4}, 3, block,
                           [&] { done = true; });
      while (!done) simulator.step();
    }
  }
  driver->crash();
  driver.reset();
  std::printf("*** crashed with pending records; inspecting the raw log disk ***\n\n");

  core::LogScanner scanner(log_disk);
  const core::ScanReport report = scanner.scan();

  std::printf("formatted          : %s (%d/3 header replicas intact)\n",
              report.formatted ? "yes" : "NO", report.intact_header_replicas);
  std::printf("disk header        : epoch=%u crash_var=%u resume_track=%u\n",
              report.disk_header.epoch, report.disk_header.crash_var,
              report.disk_header.resume_track);
  std::printf("sector census      : %llu written (%llu record headers, %llu payload, "
              "%llu other)\n",
              static_cast<unsigned long long>(report.sectors_scanned),
              static_cast<unsigned long long>(report.record_headers),
              static_cast<unsigned long long>(report.payload_sectors),
              static_cast<unsigned long long>(report.other_sectors));
  for (const auto& [epoch, count] : report.records_per_epoch)
    std::printf("  epoch %u: %llu records%s\n", epoch,
                static_cast<unsigned long long>(count),
                epoch == report.disk_header.epoch ? "   <- crashed epoch" : " (stale)");

  std::printf("chain verification : %s",
              report.chain_verified ? "OK" : report.chain_error.c_str());
  std::printf(" (%u records on the live chain)\n", report.chain_length);

  // Utilization histogram over tracks that carry current-epoch data.
  int buckets[5] = {};
  int touched = 0;
  for (double u : report.track_utilization) {
    if (u <= 0) continue;
    ++touched;
    ++buckets[std::min(4, static_cast<int>(u * 5))];
  }
  std::printf("track utilization  : %d tracks carry crashed-epoch records\n", touched);
  const char* labels[5] = {"0-20%", "20-40%", "40-60%", "60-80%", "80-100%"};
  for (int b = 0; b < 5; ++b) {
    std::printf("  %-7s %3d |", labels[b], buckets[b]);
    for (int i = 0; i < buckets[b]; ++i) std::printf("#");
    std::printf("\n");
  }

  std::printf("\nlive records (youngest first):\n");
  auto records = scanner.records_of_epoch(report.disk_header.epoch);
  for (auto it = records.rbegin(); it != records.rend(); ++it)
    std::printf("%s", core::LogScanner::describe(*it).c_str());

  // Boot a fresh driver: recovery replays the chain we just inspected.
  std::printf("\n*** rebooting: recovery should find the same chain ***\n");
  log_disk.restart();
  data_disk.restart();
  core::TrailDriver rebooted(simulator, log_disk);
  (void)rebooted.add_data_disk(data_disk);
  rebooted.mount();
  std::printf("recovered %u records (%u track scans, %.1f ms locate)\n",
              rebooted.last_recovery().records_found, rebooted.last_recovery().tracks_scanned,
              rebooted.last_recovery().locate_time.ms());
  rebooted.unmount();
  return 0;
}

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/crc32.hpp"
#include "core/log_format.hpp"
#include "disk/profile.hpp"
#include "sim/random.hpp"

namespace trail::core {
namespace {

using disk::kSectorSize;
using disk::SectorBuf;

TEST(Crc32, KnownVectors) {
  // CRC32("123456789") = 0xCBF43926 (IEEE).
  const char* s = "123456789";
  EXPECT_EQ(crc32(std::span<const std::byte>(reinterpret_cast<const std::byte*>(s), 9)),
            0xCBF43926u);
  EXPECT_EQ(crc32(std::span<const std::byte>{}), 0u);
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<std::byte> data(64, std::byte{0x3C});
  const std::uint32_t c = crc32(data);
  data[17] ^= std::byte{0x01};
  EXPECT_NE(crc32(data), c);
}

// Shift-register reference: the polynomial definition itself, no tables.
// Every production tier must match this bit-for-bit.
std::uint32_t crc32_bitwise(std::span<const std::byte> data, std::uint32_t seed = 0) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const std::byte b : data) {
    c ^= std::to_integer<std::uint8_t>(b);
    for (int k = 0; k < 8; ++k) c = (c >> 1) ^ ((c & 1u) != 0 ? 0xEDB88320u : 0u);
  }
  return c ^ 0xFFFFFFFFu;
}

TEST(Crc32Property, AllTiersMatchBitwiseReference) {
  // Random lengths (biased to cover the hw tier's >= 64-byte bulk
  // threshold and its %16 tail peeling), random base alignments, random
  // seeds. The dispatched entry point and each forced tier must all
  // agree with the shift-register reference.
  sim::Rng rng(2024);
  std::vector<std::byte> pool(4096 + 8);
  for (auto& b : pool) b = std::byte(static_cast<std::uint8_t>(rng.next()));
  for (int trial = 0; trial < 400; ++trial) {
    const auto len = static_cast<std::size_t>(rng.uniform(0, trial % 2 == 0 ? 96 : 4096));
    const auto align = static_cast<std::size_t>(rng.uniform(0, 7));
    const auto seed = static_cast<std::uint32_t>(rng.next());
    const std::span<const std::byte> data(pool.data() + align, len);
    const std::uint32_t want = crc32_bitwise(data, seed);
    EXPECT_EQ(crc32(data, seed), want) << "len=" << len << " align=" << align;
    EXPECT_EQ(detail::crc32_with(CrcImpl::kTable, data, seed), want);
    EXPECT_EQ(detail::crc32_with(CrcImpl::kSliced, data, seed), want);
    EXPECT_EQ(detail::crc32_with(CrcImpl::kHw, data, seed), want);
  }
}

TEST(Crc32Property, ChainingAndAccumulatorAgree) {
  // crc32(a || b) == crc32(b, crc32(a)), and the incremental accumulator
  // over arbitrary split points equals the one-shot CRC.
  sim::Rng rng(7);
  std::vector<std::byte> data(1500);
  for (auto& b : data) b = std::byte(static_cast<std::uint8_t>(rng.next()));
  const std::uint32_t whole = crc32(data);
  for (int trial = 0; trial < 50; ++trial) {
    const auto cut = static_cast<std::size_t>(rng.uniform(0, static_cast<std::int64_t>(data.size())));
    const std::span<const std::byte> a(data.data(), cut);
    const std::span<const std::byte> b(data.data() + cut, data.size() - cut);
    EXPECT_EQ(crc32(b, crc32(a)), whole);
    Crc32 acc;
    std::size_t off = 0;
    while (off < data.size()) {
      const auto step = std::min<std::size_t>(
          data.size() - off, static_cast<std::size_t>(rng.uniform(0, 200)));
      acc.update({data.data() + off, step});
      off += step;
    }
    EXPECT_EQ(acc.value(), whole);
  }
}

TEST(Crc32Property, CombineIdentities) {
  sim::Rng rng(11);
  std::vector<std::byte> data(2048);
  for (auto& b : data) b = std::byte(static_cast<std::uint8_t>(rng.next()));
  for (int trial = 0; trial < 100; ++trial) {
    const auto cut = static_cast<std::size_t>(rng.uniform(0, static_cast<std::int64_t>(data.size())));
    const std::span<const std::byte> a(data.data(), cut);
    const std::span<const std::byte> b(data.data() + cut, data.size() - cut);
    EXPECT_EQ(crc32_combine(crc32(a), crc32(b), b.size()), crc32(data)) << "cut=" << cut;
  }
  // Empty-span neutrality on both sides.
  const std::uint32_t c = crc32(data);
  EXPECT_EQ(crc32_combine(c, crc32(std::span<const std::byte>{}), 0), c);
  EXPECT_EQ(crc32_combine(crc32(std::span<const std::byte>{}), c, data.size()), c);
}

TEST(Crc32Property, DispatchReportsConsistentTier) {
  const CrcImpl impl = crc32_impl();
  const std::string name = crc32_impl_name();
  switch (impl) {
    case CrcImpl::kTable:
      EXPECT_EQ(name, "table");
      break;
    case CrcImpl::kSliced:
      EXPECT_EQ(name, "sliced");
      break;
    case CrcImpl::kHw:
      EXPECT_EQ(name, "hw");
      break;
  }
}

TEST(DiskHeader, RoundTrip) {
  SectorBuf sector{};
  const LogDiskHeader hdr{7, 0, 123};
  serialize_disk_header(hdr, sector);
  const auto parsed = parse_disk_header(sector);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, hdr);
}

TEST(DiskHeader, RejectsCorruption) {
  SectorBuf sector{};
  serialize_disk_header(LogDiskHeader{1, 1, 0}, sector);
  SectorBuf bad = sector;
  bad[10] ^= std::byte{0xFF};
  EXPECT_FALSE(parse_disk_header(bad).has_value());
  bad = sector;
  bad[1] = std::byte{'X'};  // signature
  EXPECT_FALSE(parse_disk_header(bad).has_value());
  SectorBuf zero{};
  EXPECT_FALSE(parse_disk_header(zero).has_value());
}

TEST(GeometryBlock, RoundTrip) {
  const disk::DiskProfile p = disk::st41601n();
  SectorBuf sector{};
  serialize_geometry(p.geometry, p.rpm, sector);
  const auto parsed = parse_geometry(sector);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->geometry.surfaces(), p.geometry.surfaces());
  EXPECT_EQ(parsed->geometry.cylinders(), p.geometry.cylinders());
  EXPECT_EQ(parsed->geometry.total_sectors(), p.geometry.total_sectors());
  EXPECT_DOUBLE_EQ(parsed->geometry.skew_fraction(), p.geometry.skew_fraction());
  EXPECT_DOUBLE_EQ(parsed->rpm, p.rpm);
  ASSERT_EQ(parsed->geometry.zones().size(), p.geometry.zones().size());
  for (std::size_t i = 0; i < p.geometry.zones().size(); ++i) {
    EXPECT_EQ(parsed->geometry.zones()[i].cylinder_count, p.geometry.zones()[i].cylinder_count);
    EXPECT_EQ(parsed->geometry.zones()[i].sectors_per_track,
              p.geometry.zones()[i].sectors_per_track);
  }
}

TEST(GeometryBlock, RejectsCorruption) {
  const disk::DiskProfile p = disk::small_test_disk();
  SectorBuf sector{};
  serialize_geometry(p.geometry, p.rpm, sector);
  sector[40] ^= std::byte{0x01};
  EXPECT_FALSE(parse_geometry(sector).has_value());
}

RecordHeader sample_record(std::uint32_t batch) {
  RecordHeader hdr;
  hdr.batch_size = batch;
  hdr.epoch = 3;
  hdr.sequence_id = 42;
  hdr.prev_sect = 1000;
  hdr.log_head = 900;
  hdr.payload_crc = 0xDEADBEEF;
  for (std::uint32_t i = 0; i < batch; ++i) {
    RecordEntry e;
    e.first_data_byte = static_cast<std::uint8_t>(i * 7 + 1);
    e.log_lba = 2000 + i;
    e.data_lba = 5000 + i * 3;
    e.data_major = 3;
    e.data_minor = static_cast<std::uint8_t>(i % 2);
    hdr.entries.push_back(e);
  }
  return hdr;
}

TEST(RecordHeaderCodec, RoundTripAllBatchSizes) {
  for (std::uint32_t batch = 1; batch <= kMaxTrailBatch; ++batch) {
    SectorBuf sector{};
    const RecordHeader hdr = sample_record(batch);
    serialize_record_header(hdr, sector);
    EXPECT_EQ(sector[0], kHeaderFirstByte);
    const auto parsed = parse_record_header(sector);
    ASSERT_TRUE(parsed.has_value()) << "batch " << batch;
    EXPECT_EQ(*parsed, hdr);
  }
}

TEST(RecordHeaderCodec, RejectsBadInput) {
  SectorBuf sector{};
  serialize_record_header(sample_record(4), sector);
  SectorBuf bad = sector;
  bad[20] ^= std::byte{0x40};
  EXPECT_FALSE(parse_record_header(bad).has_value());
  bad = sector;
  bad[0] = std::byte{0x00};
  EXPECT_FALSE(parse_record_header(bad).has_value());

  RecordHeader invalid = sample_record(2);
  invalid.batch_size = 3;  // entries mismatch
  EXPECT_THROW(serialize_record_header(invalid, sector), std::invalid_argument);
  RecordHeader zero = sample_record(1);
  zero.entries.clear();
  zero.batch_size = 0;
  EXPECT_THROW(serialize_record_header(zero, sector), std::invalid_argument);
}

TEST(RecordHeaderCodec, RandomSectorAlmostNeverParses) {
  sim::Rng rng(1);
  SectorBuf sector{};
  for (int trial = 0; trial < 2000; ++trial) {
    for (auto& b : sector) b = std::byte(static_cast<std::uint8_t>(rng.next()));
    EXPECT_FALSE(parse_record_header(sector).has_value());
  }
}

TEST(Escaping, HeaderAndPayloadAreDistinguishable) {
  // The core self-description property (§3.2): any payload sector, even
  // one whose content is an exact record-header image, is classified as
  // payload after escaping.
  SectorBuf header_image{};
  serialize_record_header(sample_record(8), header_image);
  EXPECT_EQ(classify_sector(header_image), SectorKind::kRecordHeader);

  SectorBuf payload = header_image;  // adversarial payload
  const std::uint8_t original = escape_payload_sector(payload);
  EXPECT_EQ(original, 0xFF);
  EXPECT_EQ(payload[0], kDataFirstByte);
  EXPECT_EQ(classify_sector(payload), SectorKind::kPayload);

  unescape_payload_sector(payload, original);
  EXPECT_EQ(std::memcmp(payload.data(), header_image.data(), kSectorSize), 0);
}

TEST(Escaping, RoundTripsRandomPayloads) {
  sim::Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    SectorBuf sector{};
    for (auto& b : sector) b = std::byte(static_cast<std::uint8_t>(rng.next()));
    const SectorBuf original = sector;
    const std::uint8_t first = escape_payload_sector(sector);
    EXPECT_EQ(sector[0], kDataFirstByte);
    EXPECT_NE(classify_sector(sector), SectorKind::kRecordHeader);
    unescape_payload_sector(sector, first);
    EXPECT_EQ(sector, original);
  }
}

TEST(RecordKey, OrdersAcrossEpochs) {
  EXPECT_LT(record_key(1, 0xFFFFFFFFu), record_key(2, 0));
  EXPECT_LT(record_key(2, 5), record_key(2, 6));
  RecordHeader hdr = sample_record(1);
  EXPECT_EQ(record_key(hdr), record_key(hdr.epoch, hdr.sequence_id));
}

TEST(ClassifySector, OtherBytes) {
  SectorBuf sector{};
  sector[0] = std::byte{0x7F};
  EXPECT_EQ(classify_sector(sector), SectorKind::kOther);
  EXPECT_EQ(classify_sector({}), SectorKind::kOther);
}

TEST(Escaping, SinglePassImageMatchesPerSectorPath) {
  // escape_payload_image (one pass, CRC folded in) must be byte- and
  // CRC-identical to the legacy two-pass path: escape each sector, then
  // payload_image_crc over the escaped image.
  sim::Rng rng(123);
  for (int batch : {1, 3, 8}) {
    std::vector<std::byte> image(static_cast<std::size_t>(batch) * kSectorSize);
    for (auto& b : image) b = std::byte(static_cast<std::uint8_t>(rng.next()));
    std::vector<std::byte> reference = image;

    std::vector<RecordEntry> legacy(static_cast<std::size_t>(batch));
    for (int s = 0; s < batch; ++s)
      legacy[static_cast<std::size_t>(s)].first_data_byte = escape_payload_sector(
          std::span<std::byte>(reference.data() + static_cast<std::size_t>(s) * kSectorSize,
                               kSectorSize));
    const std::uint32_t legacy_crc = payload_image_crc(reference);

    std::vector<RecordEntry> entries(static_cast<std::size_t>(batch));
    EXPECT_EQ(escape_payload_image(image, entries), legacy_crc);
    EXPECT_EQ(image, reference);
    for (int s = 0; s < batch; ++s)
      EXPECT_EQ(entries[static_cast<std::size_t>(s)].first_data_byte,
                legacy[static_cast<std::size_t>(s)].first_data_byte);
  }
  std::vector<std::byte> image(kSectorSize);
  std::vector<RecordEntry> wrong(2);
  EXPECT_THROW(static_cast<void>(escape_payload_image(image, wrong)), std::invalid_argument);
}

// On-disk format lock-in: an image committed before the codec overhaul
// must parse losslessly AND re-serialize to the exact same bytes with
// the current codec. If this fails, the change broke compatibility with
// existing log disks.
TEST(GoldenImage, PrePrLogImageRoundTripsByteExact) {
  const std::string path = std::string(TRAIL_TEST_DATA_DIR) + "/golden_log_image.bin";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << path;
  std::vector<std::byte> golden(8 * kSectorSize);
  in.read(reinterpret_cast<char*>(golden.data()), static_cast<std::streamsize>(golden.size()));
  ASSERT_EQ(in.gcount(), static_cast<std::streamsize>(golden.size()));

  auto sec = [&](int i) {
    return std::span<const std::byte>(golden.data() + static_cast<std::size_t>(i) * kSectorSize,
                                      kSectorSize);
  };

  // Parse every sector with the current codec.
  const auto disk_hdr = parse_disk_header(sec(0));
  ASSERT_TRUE(disk_hdr.has_value());
  EXPECT_EQ(*disk_hdr, (LogDiskHeader{7, 0, 3}));

  const auto geom = parse_geometry(sec(1));
  ASSERT_TRUE(geom.has_value());
  EXPECT_EQ(geom->geometry.surfaces(), 2u);
  EXPECT_DOUBLE_EQ(geom->rpm, 5400.0);

  const auto rec = parse_record_header(sec(2));
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->batch_size, 5u);
  EXPECT_EQ(rec->epoch, 7u);
  EXPECT_EQ(rec->sequence_id, 42u);
  ASSERT_EQ(rec->entries.size(), 5u);
  for (std::uint32_t s = 0; s < 5; ++s) {
    EXPECT_EQ(rec->entries[s].log_lba, 200 + s);
    EXPECT_EQ(rec->entries[s].data_lba, 5000 + 3 * s);
    EXPECT_EQ(rec->entries[s].data_major, 1);
    EXPECT_EQ(rec->entries[s].data_minor, s);
  }

  // Escaped payload checks out against the stored CRC, and unescaping
  // recovers the original generator pattern.
  const std::span<const std::byte> payload(golden.data() + 3 * kSectorSize, 5 * kSectorSize);
  EXPECT_EQ(payload_image_crc(payload), rec->payload_crc);
  for (std::uint32_t s = 0; s < 5; ++s) {
    SectorBuf plain{};
    std::memcpy(plain.data(), golden.data() + (3 + s) * kSectorSize, kSectorSize);
    unescape_payload_sector(plain, rec->entries[s].first_data_byte);
    for (std::size_t j = 0; j < kSectorSize; ++j)
      ASSERT_EQ(plain[j], std::byte(static_cast<std::uint8_t>((s * 37 + j * 11) & 0xFF)))
          << "sector " << s << " byte " << j;
  }

  // Re-serialize everything with the current encoder: byte-exact.
  std::vector<std::byte> rebuilt(8 * kSectorSize);
  auto out = [&](int i) {
    return std::span<std::byte>(rebuilt.data() + static_cast<std::size_t>(i) * kSectorSize,
                                kSectorSize);
  };
  serialize_disk_header(*disk_hdr, out(0));
  serialize_geometry(geom->geometry, geom->rpm, out(1));
  for (std::uint32_t s = 0; s < 5; ++s) {
    auto p = out(static_cast<int>(3 + s));
    for (std::size_t j = 0; j < kSectorSize; ++j)
      p[j] = std::byte(static_cast<std::uint8_t>((s * 37 + j * 11) & 0xFF));
  }
  RecordHeader hdr = *rec;
  std::span<std::byte> payload_out(rebuilt.data() + 3 * kSectorSize, 5 * kSectorSize);
  hdr.payload_crc = escape_payload_image(payload_out, hdr.entries);
  serialize_record_header(hdr, out(2));
  EXPECT_EQ(rebuilt, golden);
}

}  // namespace
}  // namespace trail::core

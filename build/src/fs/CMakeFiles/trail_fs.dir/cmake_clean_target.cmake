file(REMOVE_RECURSE
  "libtrail_fs.a"
)

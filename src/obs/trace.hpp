// Event tracing for the observability layer (trail::obs).
//
// A bounded ring of typed events stamped with SIMULATED time: traces
// answer "why did the batching factor move" in virtual-time terms, and —
// because the simulation is deterministic — two runs of the same seed
// export byte-identical traces, which the test suite checks.
//
// Event kinds map onto the Chrome trace-event format (loadable in
// chrome://tracing and Perfetto):
//   * complete ("X")  — a span with begin timestamp and duration
//     (recorded once, at completion, so async operations need no
//     begin/end pairing across callbacks);
//   * instant  ("i")  — a point event, optionally carrying a value;
//   * counter  ("C")  — a sampled level (queue depth lanes).
//
// Storage uses the delta/mask capture idiom of hardware trace loggers:
// instead of a fixed 40+-byte struct per event, each event is one mask
// byte naming which fields differ from the previous event, followed by
// varint-encoded deltas for just those fields (timestamps zigzag-delta
// against the previous event, names/categories intern to small ids).
// Consecutive hot-path events mostly repeat name/cat/tid, so a typical
// event costs a handful of bytes — million-event production traces stay
// cheap to retain — while decode reconstructs the exact TraceEvent
// sequence, keeping exports byte-identical to the uncompressed form.
//
// Names and categories are `const char*` and must be string literals
// (or otherwise outlive the tracer): events store interned pointers.
// When the tracer is disabled every emit call is a single predictable
// branch; ScopedSpan degenerates to storing one null pointer.
//
// Thread safety: the delta codec's state (tail/head references, intern
// table, decode cursor) is one capability — a sync::Mutex guards the
// whole ring, so concurrent producers may emit events and a reader may
// export while they do. The enabled gate stays a lock-free atomic so a
// disabled tracer still costs one predictable branch per call site.
// Note that `now()` reads SIMULATED time: events emitted off the
// simulation thread should pass an explicit begin time (complete()) —
// the MPSC front-end's producers never emit, only the consumer does.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "sync/sync.hpp"

namespace trail::obs {

enum class TracePhase : std::uint8_t { kComplete, kInstant, kCounter };

struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  std::int64_t ts_ns = 0;   // simulated begin time
  std::int64_t dur_ns = 0;  // kComplete only
  std::int64_t value = 0;   // kCounter level / kInstant arg
  std::uint32_t tid = 0;    // presentation lane (see set_track_name)
  TracePhase ph = TracePhase::kInstant;
  bool has_value = false;
};

class EventTracer {
 public:
  /// `capacity` bounds RETAINED EVENTS (not bytes); the oldest event is
  /// evicted when a push would exceed it, exactly as the old fixed ring.
  explicit EventTracer(const sim::Simulator& sim, std::size_t capacity = 1 << 16);

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  [[nodiscard]] sim::TimePoint now() const { return sim_->now(); }

  /// Name a presentation lane ("log0", "data1", "wal", ...). Metadata
  /// only; survives clear().
  void set_track_name(std::uint32_t tid, std::string name) TRAIL_EXCLUDES(mu_);

  /// A span [begin, begin+dur), emitted at completion time.
  void complete(const char* name, const char* cat, sim::TimePoint begin, sim::Duration dur,
                std::uint32_t tid = 0) TRAIL_EXCLUDES(mu_);
  void instant(const char* name, const char* cat, std::uint32_t tid = 0) TRAIL_EXCLUDES(mu_);
  void instant_value(const char* name, const char* cat, std::int64_t value,
                     std::uint32_t tid = 0) TRAIL_EXCLUDES(mu_);
  void counter(const char* name, const char* cat, std::int64_t value, std::uint32_t tid = 0)
      TRAIL_EXCLUDES(mu_);

  /// Events currently retained (<= capacity).
  [[nodiscard]] std::size_t size() const TRAIL_EXCLUDES(mu_) {
    sync::MutexLock lock(mu_);
    return count_;
  }
  [[nodiscard]] std::size_t capacity() const { return cap_events_; }
  /// Events evicted because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const TRAIL_EXCLUDES(mu_) {
    sync::MutexLock lock(mu_);
    return dropped_;
  }
  /// Oldest-first event access (i in [0, size())). Sequential access is
  /// O(1) amortized via an internal decode cursor; random access decodes
  /// forward from the oldest retained event.
  [[nodiscard]] TraceEvent at(std::size_t i) const TRAIL_EXCLUDES(mu_);

  /// Bytes currently held by the delta/mask-encoded event stream — the
  /// compression the capture path buys (compare against
  /// size() * sizeof(TraceEvent) for the fixed-slot cost).
  [[nodiscard]] std::size_t encoded_bytes() const TRAIL_EXCLUDES(mu_) {
    sync::MutexLock lock(mu_);
    return buf_.size() - head_off_;
  }

  void clear() TRAIL_EXCLUDES(mu_);

  /// Chrome trace-event JSON ({"traceEvents":[...]}), oldest event
  /// first, lane-name metadata first of all. Deterministic: equal event
  /// sequences serialize to equal bytes.
  [[nodiscard]] std::string export_chrome_json() const TRAIL_EXCLUDES(mu_);

 private:
  /// Absolute field values at a point in the stream; the delta codec's
  /// reference. Default-initialized == the state before the first event.
  struct FieldState {
    const char* name = nullptr;
    const char* cat = nullptr;
    std::uint32_t name_id = 0;
    std::uint32_t cat_id = 0;
    std::uint32_t tid = 0;
    std::int64_t ts = 0;
    std::int64_t value = 0;
  };

  void push(const TraceEvent& e) TRAIL_REQUIRES(mu_);
  void drop_oldest() TRAIL_REQUIRES(mu_);
  void compact() TRAIL_REQUIRES(mu_);
  [[nodiscard]] std::uint32_t intern(const char* s) TRAIL_REQUIRES(mu_);
  /// Decode the event at byte offset `off` given the prior state; both
  /// advance past it.
  TraceEvent decode(std::size_t& off, FieldState& state) const TRAIL_REQUIRES(mu_);

  const sim::Simulator* const sim_;  // set at construction, never reseated
  const std::size_t cap_events_;
  std::atomic<bool> enabled_{false};

  mutable sync::Mutex mu_;  // one capability over the whole codec state
  std::vector<std::uint8_t> buf_ TRAIL_GUARDED_BY(mu_);  // delta/mask event stream
  std::size_t head_off_ TRAIL_GUARDED_BY(mu_) = 0;  // byte offset of the oldest event
  std::size_t count_ TRAIL_GUARDED_BY(mu_) = 0;
  std::uint64_t dropped_ TRAIL_GUARDED_BY(mu_) = 0;

  FieldState tail_state_ TRAIL_GUARDED_BY(mu_);  // encoder ref: the last captured event
  FieldState head_state_ TRAIL_GUARDED_BY(mu_);  // decoder ref: before the oldest event

  // Name/category interning (pointer identity; literals repeat).
  std::vector<const char*> interned_ TRAIL_GUARDED_BY(mu_){nullptr};  // id 0 == none yet
  std::map<const char*, std::uint32_t> intern_ids_ TRAIL_GUARDED_BY(mu_);

  // Sequential-access cursor for at(): the state needed to decode event
  // index cursor_index_ at byte offset cursor_off_.
  mutable bool cursor_valid_ TRAIL_GUARDED_BY(mu_) = false;
  mutable std::size_t cursor_index_ TRAIL_GUARDED_BY(mu_) = 0;
  mutable std::size_t cursor_off_ TRAIL_GUARDED_BY(mu_) = 0;
  mutable FieldState cursor_state_ TRAIL_GUARDED_BY(mu_);

  std::map<std::uint32_t, std::string> track_names_ TRAIL_GUARDED_BY(mu_);
};

/// RAII span for synchronous scopes (recovery phases, bench phases):
/// captures simulated begin time, emits one complete event at scope
/// exit. Construct with a null/disabled tracer for a guaranteed no-op.
class ScopedSpan {
 public:
  ScopedSpan(EventTracer* tracer, const char* name, const char* cat, std::uint32_t tid = 0)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        name_(name),
        cat_(cat),
        tid_(tid) {
    if (tracer_ != nullptr) begin_ = tracer_->now();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { finish(); }

  /// End the span early (before scope exit). Idempotent.
  void finish() {
    if (tracer_ == nullptr) return;
    tracer_->complete(name_, cat_, begin_, tracer_->now() - begin_, tid_);
    tracer_ = nullptr;
  }

 private:
  EventTracer* tracer_;
  const char* name_;
  const char* cat_;
  std::uint32_t tid_;
  sim::TimePoint begin_{};
};

}  // namespace trail::obs

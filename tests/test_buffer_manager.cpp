#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/buffer_manager.hpp"

namespace trail::core {
namespace {

using disk::kSectorSize;

std::vector<std::byte> fill(std::uint32_t sectors, std::uint8_t v) {
  return std::vector<std::byte>(static_cast<std::size_t>(sectors) * kSectorSize, std::byte{v});
}

class BufferManagerTest : public ::testing::Test {
 protected:
  std::vector<RecordId> durable;
  BufferManager bm{[this](RecordId id) { durable.push_back(id); }};
  io::DeviceId dev{3, 0};
  io::DeviceId dev2{3, 1};
};

TEST_F(BufferManagerTest, RegisterPinsAndCovers) {
  bm.register_write(1, dev, 100, fill(4, 0xAA));
  EXPECT_EQ(bm.pinned_sectors(), 4u);
  EXPECT_TRUE(bm.covers(dev, 100, 4));
  EXPECT_TRUE(bm.covers(dev, 101, 2));
  EXPECT_FALSE(bm.covers(dev, 100, 5));
  EXPECT_FALSE(bm.covers(dev2, 100, 1));
  EXPECT_TRUE(bm.covers_any(dev, 103, 3));
  EXPECT_FALSE(bm.covers_any(dev, 104, 3));
  EXPECT_EQ(bm.pending_records(), 1u);
  EXPECT_FALSE(bm.record_settled(1));
}

TEST_F(BufferManagerTest, OverlayCopiesOnlyPinnedSectors) {
  bm.register_write(1, dev, 10, fill(2, 0xAA));
  auto buf = fill(4, 0x00);
  bm.overlay(dev, 9, 4, buf);  // sectors 9,12 unpinned; 10,11 pinned
  EXPECT_EQ(buf[0], std::byte{0x00});
  EXPECT_EQ(buf[kSectorSize], std::byte{0xAA});
  EXPECT_EQ(buf[2 * kSectorSize], std::byte{0xAA});
  EXPECT_EQ(buf[3 * kSectorSize], std::byte{0x00});
}

TEST_F(BufferManagerTest, SnapshotAndMarkDurableSettlesRecord) {
  bm.register_write(7, dev, 50, fill(3, 0x11));
  const auto img = bm.snapshot(dev, 50, 3);
  EXPECT_EQ(img.data, fill(3, 0x11));
  ASSERT_EQ(img.versions.size(), 3u);
  bm.mark_durable(dev, 50, img.versions);
  EXPECT_EQ(durable, std::vector<RecordId>{7});
  EXPECT_TRUE(bm.record_settled(7));
  EXPECT_EQ(bm.pinned_sectors(), 0u) << "settled sectors must unpin";
}

TEST_F(BufferManagerTest, SupersedingWriteCarriesOlderRecord) {
  // Record 1 writes sectors 0..3; record 2 overwrites 0..3 before the
  // write-back dispatches. The (single) write-back snapshots the LATEST
  // content; committing it settles BOTH records at once — the §4.2
  // "reclaimed simultaneously" behaviour.
  bm.register_write(1, dev, 0, fill(4, 0x01));
  bm.register_write(2, dev, 0, fill(4, 0x02));
  const auto img = bm.snapshot(dev, 0, 4);
  EXPECT_EQ(img.data, fill(4, 0x02)) << "snapshot must carry the newest content";
  bm.mark_durable(dev, 0, img.versions);
  EXPECT_EQ(durable, (std::vector<RecordId>{1, 2}));
  EXPECT_EQ(bm.pinned_sectors(), 0u);
}

TEST_F(BufferManagerTest, StaleWritebackDoesNotSettleNewerRecord) {
  bm.register_write(1, dev, 0, fill(2, 0x01));
  const auto img_old = bm.snapshot(dev, 0, 2);
  bm.register_write(2, dev, 0, fill(2, 0x02));  // supersedes after snapshot
  bm.mark_durable(dev, 0, img_old.versions);    // the old image landed
  EXPECT_EQ(durable, std::vector<RecordId>{1});
  EXPECT_FALSE(bm.record_settled(2));
  EXPECT_EQ(bm.pinned_sectors(), 2u) << "newer content still pinned";
  const auto img_new = bm.snapshot(dev, 0, 2);
  bm.mark_durable(dev, 0, img_new.versions);
  EXPECT_EQ(durable, (std::vector<RecordId>{1, 2}));
}

TEST_F(BufferManagerTest, PartialOverlapSettlesPerSector) {
  bm.register_write(1, dev, 0, fill(4, 0x01));   // sectors 0-3
  bm.register_write(2, dev, 2, fill(4, 0x02));   // sectors 2-5
  // Write back record 2's range only.
  const auto img = bm.snapshot(dev, 2, 4);
  bm.mark_durable(dev, 2, img.versions);
  EXPECT_EQ(durable, std::vector<RecordId>{2});
  EXPECT_FALSE(bm.record_settled(1)) << "sectors 0-1 still pending";
  const auto img1 = bm.snapshot(dev, 0, 2);
  bm.mark_durable(dev, 0, img1.versions);
  EXPECT_EQ(durable, (std::vector<RecordId>{2, 1}));
}

TEST_F(BufferManagerTest, RangeSettledTracksLatestVersions) {
  bm.register_write(1, dev, 0, fill(2, 0x01));
  EXPECT_FALSE(bm.range_settled(dev, 0, 2));
  const auto img = bm.snapshot(dev, 0, 2);
  bm.mark_durable(dev, 0, img.versions);
  EXPECT_TRUE(bm.range_settled(dev, 0, 2));
  EXPECT_TRUE(bm.range_settled(dev, 100, 4)) << "untouched ranges count as settled";
}

TEST_F(BufferManagerTest, CoverPinKeepsSectorResident) {
  bm.register_write(1, dev, 0, fill(2, 0x01));
  bm.pin_range(dev, 0, 2);
  const auto img = bm.snapshot(dev, 0, 2);
  bm.mark_durable(dev, 0, img.versions);
  EXPECT_TRUE(bm.record_settled(1));
  EXPECT_EQ(bm.pinned_sectors(), 2u) << "cover pin must hold the sectors";
  // Snapshot still possible for a queued-but-stale write-back.
  EXPECT_NO_THROW(bm.snapshot(dev, 0, 2));
  bm.unpin_range(dev, 0, 2);
  EXPECT_EQ(bm.pinned_sectors(), 0u);
}

TEST_F(BufferManagerTest, PinErrors) {
  EXPECT_THROW(bm.pin_range(dev, 0, 1), std::logic_error);
  bm.register_write(1, dev, 0, fill(1, 0x01));
  EXPECT_THROW(bm.unpin_range(dev, 0, 1), std::logic_error);
}

TEST_F(BufferManagerTest, SnapshotOfUnpinnedThrows) {
  EXPECT_THROW(bm.snapshot(dev, 0, 1), std::logic_error);
}

TEST_F(BufferManagerTest, MultiDeviceIsolation) {
  bm.register_write(1, dev, 0, fill(1, 0x01));
  bm.register_write(2, dev2, 0, fill(1, 0x02));
  auto img = bm.snapshot(dev, 0, 1);
  EXPECT_EQ(img.data, fill(1, 0x01));
  bm.mark_durable(dev, 0, img.versions);
  EXPECT_EQ(durable, std::vector<RecordId>{1});
  EXPECT_FALSE(bm.record_settled(2));
}

TEST_F(BufferManagerTest, HighWaterMarkMonotone) {
  bm.register_write(1, dev, 0, fill(8, 0x01));
  const auto high = bm.pinned_bytes_high_water();
  EXPECT_EQ(high, 8 * kSectorSize);
  auto img = bm.snapshot(dev, 0, 8);
  bm.mark_durable(dev, 0, img.versions);
  EXPECT_EQ(bm.pinned_bytes(), 0u);
  EXPECT_EQ(bm.pinned_bytes_high_water(), high);
}

TEST_F(BufferManagerTest, RejectsBadInput) {
  EXPECT_THROW(bm.register_write(1, dev, 0, std::vector<std::byte>(100)), std::invalid_argument);
  EXPECT_THROW(bm.register_write(1, dev, 0, {}), std::invalid_argument);
  EXPECT_THROW(BufferManager(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace trail::core

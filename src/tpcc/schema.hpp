// TPC-C schema: the nine tables, fixed-size row structs, key encodings,
// and the scale parameters (w = 1 in the paper's runs; row counts can be
// scaled down for fast CI while keeping the access skew intact).
#pragma once

#include <array>
#include <cstdint>
#include <cstring>

#include "db/types.hpp"

namespace trail::tpcc {

// ---- scale -----------------------------------------------------------------

struct Scale {
  std::uint32_t warehouses = 1;
  std::uint32_t districts_per_warehouse = 10;
  std::uint32_t customers_per_district = 3000;
  std::uint32_t items = 100'000;
  /// Initial orders per district (also seeds NEW-ORDER backlog).
  std::uint32_t initial_orders_per_district = 3000;

  /// Proportionally smaller dataset (>= 1 row everywhere), same shape.
  [[nodiscard]] static Scale reduced(double factor) {
    Scale s;
    auto shrink = [factor](std::uint32_t v) {
      const auto r = static_cast<std::uint32_t>(v * factor);
      return r == 0 ? 1u : r;
    };
    s.customers_per_district = shrink(s.customers_per_district);
    s.items = shrink(s.items);
    s.initial_orders_per_district = shrink(s.initial_orders_per_district);
    return s;
  }
};

// ---- rows ------------------------------------------------------------------
// Sizes approximate the TPC-C clause 1.3 row widths so page, WAL and log
// traffic volumes are realistic. All rows are trivially copyable.

struct WarehouseRow {
  std::uint32_t w_id = 0;
  double tax = 0;
  double ytd = 0;
  std::array<char, 10> name{};
  std::array<char, 60> address{};
};

struct DistrictRow {
  std::uint32_t w_id = 0;
  std::uint32_t d_id = 0;
  std::uint32_t next_o_id = 1;
  double tax = 0;
  double ytd = 0;
  std::array<char, 10> name{};
  std::array<char, 60> address{};
};

struct CustomerRow {
  std::uint32_t w_id = 0;
  std::uint32_t d_id = 0;
  std::uint32_t c_id = 0;
  double credit_lim = 50'000;
  double discount = 0;
  double balance = -10;
  double ytd_payment = 10;
  std::uint32_t payment_cnt = 1;
  std::uint32_t delivery_cnt = 0;
  std::array<char, 16> last{};
  std::array<char, 16> first{};
  std::array<char, 2> credit{};  // "GC"/"BC"
  std::array<char, 60> address{};
  std::array<char, 400> data{};  // clause 1.3: C_DATA is 300-500 chars
};

struct OrderRow {
  std::uint32_t w_id = 0, d_id = 0, o_id = 0;
  std::uint32_t c_id = 0;
  std::int64_t entry_d = 0;  // virtual time (ns)
  std::uint32_t carrier_id = 0;  // 0 = not delivered
  std::uint32_t ol_cnt = 0;
  std::uint32_t all_local = 1;
};

struct NewOrderRow {
  std::uint32_t w_id = 0, d_id = 0, o_id = 0;
};

struct OrderLineRow {
  std::uint32_t w_id = 0, d_id = 0, o_id = 0, ol_number = 0;
  std::uint32_t i_id = 0;
  std::uint32_t supply_w_id = 0;
  std::int64_t delivery_d = 0;  // 0 = pending
  std::uint32_t quantity = 5;
  double amount = 0;
  std::array<char, 24> dist_info{};
};

struct ItemRow {
  std::uint32_t i_id = 0;
  std::uint32_t im_id = 0;
  double price = 0;
  std::array<char, 24> name{};
  std::array<char, 50> data{};
};

struct StockRow {
  std::uint32_t w_id = 0;
  std::uint32_t i_id = 0;
  std::uint32_t quantity = 0;
  std::uint32_t ytd = 0;
  std::uint32_t order_cnt = 0;
  std::uint32_t remote_cnt = 0;
  std::array<std::array<char, 24>, 10> dist{};  // S_DIST_01..10
  std::array<char, 50> data{};
};

struct HistoryRow {
  std::uint32_t w_id = 0, d_id = 0, c_id = 0;
  std::int64_t date = 0;
  double amount = 0;
  std::array<char, 24> data{};
};

static_assert(std::is_trivially_copyable_v<CustomerRow>);
static_assert(std::is_trivially_copyable_v<StockRow>);

// ---- row <-> RowBuf --------------------------------------------------------

template <typename Row>
db::RowBuf to_row(const Row& r) {
  db::RowBuf buf(sizeof(Row));
  std::memcpy(buf.data(), &r, sizeof(Row));
  return buf;
}

template <typename Row>
Row from_row(const db::RowBuf& buf) {
  Row r;
  std::memcpy(&r, buf.data(), sizeof(Row));
  return r;
}

// ---- key encodings ----------------------------------------------------------
// Composite keys packed into 64 bits; component widths are asserted.

inline db::Key wd_key(std::uint32_t w, std::uint32_t d) {
  return static_cast<db::Key>(w) * 100 + d;  // d in [1,10]
}
inline db::Key warehouse_key(std::uint32_t w) { return w; }
inline db::Key district_key(std::uint32_t w, std::uint32_t d) { return wd_key(w, d); }
inline db::Key customer_key(std::uint32_t w, std::uint32_t d, std::uint32_t c) {
  return wd_key(w, d) << 32 | c;
}
inline db::Key order_key(std::uint32_t w, std::uint32_t d, std::uint32_t o) {
  return wd_key(w, d) << 32 | o;
}
inline db::Key new_order_key(std::uint32_t w, std::uint32_t d, std::uint32_t o) {
  return order_key(w, d, o);
}
inline db::Key order_line_key(std::uint32_t w, std::uint32_t d, std::uint32_t o,
                              std::uint32_t ol) {
  // o fits in 28 bits (hundreds of millions of orders), ol in 4.
  return (wd_key(w, d) << 32 | o) << 4 | (ol & 0xF);
}
inline db::Key item_key(std::uint32_t i) { return i; }
inline db::Key stock_key(std::uint32_t w, std::uint32_t i) {
  return static_cast<db::Key>(w) << 32 | i;
}

/// The table set, in creation order (creation order defines TableId).
enum TableIndex : std::size_t {
  kWarehouse = 0,
  kDistrict,
  kCustomer,
  kOrder,
  kNewOrder,
  kOrderLine,
  kItem,
  kStock,
  kHistory,
  kTableCount,
};

}  // namespace trail::tpcc

# Empty dependencies file for torture.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_multilog.dir/bench_multilog.cpp.o"
  "CMakeFiles/bench_multilog.dir/bench_multilog.cpp.o.d"
  "bench_multilog"
  "bench_multilog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multilog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_tab2_tpcc.dir/bench_tab2_tpcc.cpp.o"
  "CMakeFiles/bench_tab2_tpcc.dir/bench_tab2_tpcc.cpp.o.d"
  "bench_tab2_tpcc"
  "bench_tab2_tpcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_tpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

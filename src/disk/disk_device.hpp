// Discrete-event model of a single disk drive.
//
// One command is serviced at a time (submissions queue FIFO inside the
// device; any smarter scheduling is a driver concern, as in the paper's
// software stack). Each command pays:
//
//   fixed command overhead -> arm seek / head switch -> rotational wait
//   until the target sector's leading edge passes under the head ->
//   transfer (one sector per SPT-th of a revolution), with head switches
//   and re-waits when a request crosses track boundaries.
//
// The platter angle is a pure function of virtual time (constant angular
// velocity), which is exactly the property Trail's head-position
// prediction exploits. Written bytes land in a SectorStore that survives
// crash_halt(), and a write in flight at crash time commits only the
// sectors whose transfer had finished — so torn multi-sector writes are
// faithfully modelled for recovery testing.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "disk/profile.hpp"
#include "disk/sector_store.hpp"
#include "disk/types.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace trail::disk {

/// Aggregate accounting, used by benches (e.g. Table 2's "disk I/O time
/// for logging" is the log device's busy time).
struct DiskStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t sectors_read = 0;
  std::uint64_t sectors_written = 0;
  sim::Duration busy;        // total command service time
  sim::Duration overhead;    // fixed per-command portion
  sim::Duration seek;        // arm motion + head switches
  sim::Duration rotation;    // rotational waits
  sim::Duration transfer;    // media transfer
};

class DiskDevice {
 public:
  using Completion = std::function<void()>;

  DiskDevice(sim::Simulator& sim, DiskProfile profile);

  DiskDevice(const DiskDevice&) = delete;
  DiskDevice& operator=(const DiskDevice&) = delete;

  /// Read `count` sectors into `out` (must outlive completion). The buffer
  /// is filled at completion time; `cb` fires at the completion instant.
  void read(Lba lba, std::uint32_t count, std::span<std::byte> out, Completion cb);

  /// Write `count` sectors. `data` is copied at submission, so the caller's
  /// buffer may be reused immediately.
  void write(Lba lba, std::uint32_t count, std::span<const std::byte> data, Completion cb);

  [[nodiscard]] const Geometry& geometry() const { return profile_.geometry; }
  [[nodiscard]] const DiskProfile& profile() const { return profile_; }
  [[nodiscard]] const DiskStats& stats() const { return stats_; }
  [[nodiscard]] SectorStore& store() { return store_; }
  [[nodiscard]] const SectorStore& store() const { return store_; }

  [[nodiscard]] bool busy() const { return in_flight_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

  /// Arm / active-head position after the last completed command.
  [[nodiscard]] std::uint32_t current_cylinder() const { return cylinder_; }
  [[nodiscard]] std::uint32_t current_surface() const { return surface_; }
  [[nodiscard]] TrackId current_track() const {
    return geometry().track_of(cylinder_, surface_);
  }

  /// Platter angle in [0, 1) at virtual time `t`.
  [[nodiscard]] double angle_at(sim::TimePoint t) const;

  /// Power failure: drop queued commands, truncate the in-flight write to
  /// the sectors already transferred, and reject all future submissions.
  /// No completion callbacks fire after this.
  void crash_halt();

  /// Undo crash_halt (models plugging the drive into a rebooted machine).
  void restart() { halted_ = false; }

  /// Writes that were acknowledged from the volatile cache but had not
  /// reached the media when crash_halt() hit (0 with WCE off).
  [[nodiscard]] std::uint64_t cached_writes_lost() const { return cached_writes_lost_; }

  [[nodiscard]] bool halted() const { return halted_; }

 private:
  struct Extent {
    Lba lba = 0;
    std::uint32_t count = 0;
    std::size_t data_offset = 0;            // into Request::data
    sim::TimePoint transfer_start;          // first sector begins here
    sim::Duration sector_time;
  };
  struct Request {
    bool is_write = false;
    Lba lba = 0;
    std::uint32_t count = 0;
    std::vector<std::byte> data;            // write payload (owned copy)
    std::span<std::byte> out;               // read destination (caller-owned)
    Completion cb;
  };

  void start_next();
  void begin_service(Request req);
  void finish_service();

  sim::Simulator& sim_;
  DiskProfile profile_;
  SeekModel seek_model_;
  SectorStore store_;
  DiskStats stats_;

  std::deque<Request> queue_;
  std::uint64_t cached_writes_lost_ = 0;  // acked-but-volatile at crash
  std::uint64_t wce_outstanding_ = 0;     // acked, media commit pending
  bool in_flight_ = false;

  Request active_;
  std::vector<Extent> active_extents_;
  sim::EventId completion_event_;
  bool halted_ = false;

  std::uint32_t cylinder_ = 0;
  std::uint32_t surface_ = 0;
};

}  // namespace trail::disk

// Seek-time model fitted to three published data points.
//
// Uses the classic Lee/Katz curve  T(d) = a*sqrt(d-1) + b*(d-1) + c  for a
// seek of d cylinders (d >= 1), fitted so that T(1) = track-to-track time,
// T(cyl/3) = average seek time and T(cyl-1) = full-stroke time. This is the
// same family of curves used by DiskSim-era simulators and captures the
// "square root for short seeks, linear for long seeks" behaviour the Trail
// paper's latency numbers come from.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace trail::disk {

class SeekModel {
 public:
  struct Params {
    sim::Duration track_to_track;  // T(1)
    sim::Duration average;         // T(cylinders / 3)
    sim::Duration full_stroke;     // T(cylinders - 1)
    sim::Duration head_switch;     // surface change within a cylinder
    std::uint32_t cylinders = 1;
  };

  explicit SeekModel(const Params& p);

  /// Time to move the arm across `distance` cylinders (0 => no arm motion).
  [[nodiscard]] sim::Duration seek_time(std::uint32_t distance) const;

  /// Time to switch the active head to another surface, arm stationary.
  [[nodiscard]] sim::Duration head_switch_time() const { return head_switch_; }

  /// Combined repositioning cost between two tracks: cylinder seek if the
  /// cylinders differ (which subsumes any head change), else a head switch
  /// if the surfaces differ, else zero.
  [[nodiscard]] sim::Duration reposition_time(std::uint32_t from_cylinder,
                                              std::uint32_t from_surface,
                                              std::uint32_t to_cylinder,
                                              std::uint32_t to_surface) const;

 private:
  double a_ = 0.0, b_ = 0.0, c_ = 0.0;  // coefficients in nanoseconds
  sim::Duration head_switch_;
};

}  // namespace trail::disk

#include "db/wal.hpp"

#include <cstring>
#include <memory>
#include <stdexcept>

#include "audit/check.hpp"
#include "core/crc32.hpp"

namespace trail::db {

namespace {

constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 1;  // length, crc, lsn, type

void put_u16(std::vector<std::byte>& v, std::uint16_t x) {
  v.push_back(std::byte(x & 0xFF));
  v.push_back(std::byte(x >> 8 & 0xFF));
}
void put_u32(std::vector<std::byte>& v, std::uint32_t x) {
  for (int i = 0; i < 4; ++i) v.push_back(std::byte(x >> (8 * i) & 0xFF));
}
void put_u64(std::vector<std::byte>& v, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) v.push_back(std::byte(x >> (8 * i) & 0xFF));
}
std::uint16_t get_u16(std::span<const std::byte> d, std::size_t off) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(d[off]) |
                                    static_cast<std::uint16_t>(d[off + 1]) << 8);
}
std::uint32_t get_u32(std::span<const std::byte> d, std::size_t off) {
  std::uint32_t x = 0;
  for (int i = 0; i < 4; ++i) x |= static_cast<std::uint32_t>(d[off + i]) << (8 * i);
  return x;
}
std::uint64_t get_u64(std::span<const std::byte> d, std::size_t off) {
  std::uint64_t x = 0;
  for (int i = 0; i < 8; ++i) x |= static_cast<std::uint64_t>(d[off + i]) << (8 * i);
  return x;
}

}  // namespace

LogManager::LogManager(sim::Simulator& sim, io::BlockDriver& driver, WalConfig config)
    : sim_(sim), driver_(driver), config_(config) {
  if (config_.region_sectors == 0) throw std::invalid_argument("LogManager: empty region");
}

std::vector<std::byte> LogManager::encode(const WalRecord& record) {
  std::vector<std::byte> payload;
  put_u64(payload, record.txn);
  if (record.type == WalRecordType::kUpdate || record.type == WalRecordType::kInsert ||
      record.type == WalRecordType::kDelete) {
    put_u16(payload, record.table);
    put_u64(payload, record.key);
    put_u16(payload, static_cast<std::uint16_t>(record.row.size()));
    payload.insert(payload.end(), record.row.begin(), record.row.end());
  }
  std::vector<std::byte> out;
  out.reserve(kHeaderBytes + payload.size());
  put_u32(out, static_cast<std::uint32_t>(kHeaderBytes + payload.size()));
  put_u32(out, 0);  // crc patched below
  put_u64(out, record.lsn);
  out.push_back(std::byte(static_cast<std::uint8_t>(record.type)));
  out.insert(out.end(), payload.begin(), payload.end());
  // The CRC covers everything after the crc field itself (lsn, type,
  // payload) so corrupted/stale headers are rejected too.
  const std::uint32_t crc =
      core::crc32(std::span<const std::byte>(out.data() + 8, out.size() - 8));
  for (int i = 0; i < 4; ++i) out[4 + static_cast<std::size_t>(i)] = std::byte(crc >> (8 * i) & 0xFF);
  return out;
}

std::optional<std::pair<WalRecord, std::size_t>> LogManager::decode(
    std::span<const std::byte> data) {
  if (data.size() < kHeaderBytes) return std::nullopt;
  const std::uint32_t length = get_u32(data, 0);
  if (length < kHeaderBytes || length > data.size()) return std::nullopt;
  const std::uint32_t crc = get_u32(data, 4);
  if (core::crc32(data.subspan(8, length - 8)) != crc) return std::nullopt;
  const std::span<const std::byte> payload = data.subspan(kHeaderBytes, length - kHeaderBytes);

  WalRecord rec;
  rec.lsn = get_u64(data, 8);
  const auto type = static_cast<std::uint8_t>(data[16]);
  if (type < 1 || type > 5) return std::nullopt;
  rec.type = static_cast<WalRecordType>(type);
  if (payload.size() < 8) return std::nullopt;
  rec.txn = get_u64(payload, 0);
  if (rec.type == WalRecordType::kUpdate || rec.type == WalRecordType::kInsert ||
      rec.type == WalRecordType::kDelete) {
    if (payload.size() < 8 + 2 + 8 + 2) return std::nullopt;
    rec.table = get_u16(payload, 8);
    rec.key = get_u64(payload, 10);
    const std::uint16_t row_len = get_u16(payload, 18);
    if (payload.size() < 20u + row_len) return std::nullopt;
    rec.row.assign(payload.begin() + 20, payload.begin() + 20 + row_len);
  }
  return std::make_pair(std::move(rec), static_cast<std::size_t>(length));
}

Lsn LogManager::append(const WalRecord& record) {
  WalRecord stamped = record;
  stamped.lsn = next_lsn_;
  const std::vector<std::byte> bytes = encode(stamped);
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  next_lsn_ += bytes.size();
  ++stats_.appends;
  return stamped.lsn;
}

void LogManager::commit(Lsn lsn, std::function<void()> done) {
  if (!config_.group_commit) {
    // O_SYNC semantics: wait until this commit's records are on disk.
    waiters_.push_back(Waiter{lsn + 1, std::move(done), sim_.now()});
    start_flush();
    return;
  }
  // Group commit: flush only when the buffer exceeds the threshold; the
  // flushing transaction waits, everyone else commits with deferred
  // durability.
  if (next_lsn_ - durable_lsn_ >= config_.group_commit_bytes) {
    waiters_.push_back(Waiter{lsn + 1, std::move(done), sim_.now()});
    start_flush();
    return;
  }
  // Deferred durability: the transaction reports success now; its records
  // reach disk with a later group flush. Track the exposure window.
  deferred_commits_.emplace_back(lsn + 1, sim_.now());
  if (obs_ != nullptr && obs_->tracer.enabled())
    obs_->tracer.instant("wal.deferred_commit", "wal", obs::kWalTid);
  if (done) done();
}

void LogManager::flush_all(std::function<void()> done) {
  if (durable_lsn_ >= next_lsn_) {
    if (done) done();
    return;
  }
  waiters_.push_back(Waiter{next_lsn_, std::move(done), sim_.now()});
  start_flush();
}

void LogManager::flush_until(Lsn target, std::function<void()> done) {
  if (target > next_lsn_) target = next_lsn_;
  if (durable_lsn_ >= target) {
    if (done) done();
    return;
  }
  waiters_.push_back(Waiter{target, std::move(done), sim_.now()});
  start_flush();
}

void LogManager::start_flush() {
  if (flush_in_flight_) return;  // the active flush's completion re-checks
  if (durable_lsn_ >= next_lsn_) {
    complete_waiters();
    return;
  }

  if (direct_append_) {
    // §6 direct logging: append exactly the new bytes as one Trail record
    // burst — no file-system blocks, no data-disk copy.
    const Lsn from = durable_lsn_;
    if (from < buffer_base_) throw std::logic_error("LogManager: direct bytes discarded early");
    std::vector<std::byte> bytes(buffer_.begin() +
                                     static_cast<std::ptrdiff_t>(from - buffer_base_),
                                 buffer_.end());
    flush_in_flight_ = true;
    flush_target_ = next_lsn_;
    ++stats_.flushes;
    stats_.flushed_sectors += (bytes.size() + disk::kSectorSize - 1) / disk::kSectorSize;
    auto alive = alive_;
    const sim::TimePoint submit_time = sim_.now();
    direct_append_(bytes, from, [this, alive, submit_time] {
      if (!*alive) return;
      if (obs_ != nullptr && obs_->tracer.enabled())
        obs_->tracer.complete("wal.flush", "wal", submit_time, sim_.now() - submit_time,
                              obs::kWalTid);
      note_flush_span(submit_time);
      stats_.flush_io_time += sim_.now() - submit_time;
      stats_.flushed_bytes += flush_target_ - durable_lsn_;
      durable_lsn_ = flush_target_;
      flush_in_flight_ = false;
      // Direct appends never rewrite a tail: drop everything durable.
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + static_cast<std::ptrdiff_t>(durable_lsn_ - buffer_base_));
      buffer_base_ = durable_lsn_;
      complete_waiters();
      if (!waiters_.empty()) start_flush();
    });
    return;
  }

  // Write whole sectors from the sector containing durable_lsn_ through
  // the sector containing next_lsn_ - 1 (tail sector rewritten, like an
  // O_SYNC append of a partial block).
  const Lsn from_sector = durable_lsn_ / disk::kSectorSize;
  const Lsn to_sector = (next_lsn_ - 1) / disk::kSectorSize;
  const auto sectors = static_cast<std::uint32_t>(to_sector - from_sector + 1);
  if (to_sector >= config_.region_sectors)
    throw std::runtime_error("LogManager: log region exhausted (checkpoint too rare)");

  std::vector<std::byte> image(static_cast<std::size_t>(sectors) * disk::kSectorSize);
  const Lsn image_base = from_sector * disk::kSectorSize;
  // buffer_ holds [buffer_base_, next_lsn_); image needs [image_base, ...).
  if (image_base < buffer_base_)
    throw std::logic_error("LogManager: flushed bytes discarded too early");
  std::memcpy(image.data(), buffer_.data() + (image_base - buffer_base_),
              static_cast<std::size_t>(next_lsn_ - image_base));

  flush_in_flight_ = true;
  flush_target_ = next_lsn_;
  ++stats_.flushes;
  stats_.flushed_sectors += sectors;

  // Issue the flush the way an O_SYNC write(2) over an ext2 file reaches
  // the block layer: split into file-system blocks, ALL submitted at once,
  // completing when the last block is durable. On the standard driver
  // each consecutive block still misses the rotation (the head has passed
  // its start by the time the previous completion is processed); under
  // Trail the burst of blocks coalesces into one batched log write —
  // §5.1: "the file system tends to split a large user-level file access
  // request into multiple consecutive small low-level write requests.
  // Therefore the batched write optimization is triggered more
  // frequently".
  struct FlushState {
    std::vector<std::byte> image;
    std::uint32_t outstanding = 0;
    sim::TimePoint submit_time;
  };
  auto fs = std::make_shared<FlushState>();
  fs->image = std::move(image);
  fs->submit_time = sim_.now();

  auto alive = alive_;
  auto on_chunk_done = [this, alive, fs] {
    if (!*alive) return;
    if (--fs->outstanding > 0) return;
    auto finish = [this, alive, fs] {
      if (!*alive) return;
      if (obs_ != nullptr && obs_->tracer.enabled())
        obs_->tracer.complete("wal.flush", "wal", fs->submit_time,
                              sim_.now() - fs->submit_time, obs::kWalTid);
      note_flush_span(fs->submit_time);
      stats_.flush_io_time += sim_.now() - fs->submit_time;
      stats_.flushed_bytes += flush_target_ - durable_lsn_;
      durable_lsn_ = flush_target_;
      flush_in_flight_ = false;
      // Trim the buffer to full flushed sectors (keep the partial tail).
      const Lsn keep_from = durable_lsn_ / disk::kSectorSize * disk::kSectorSize;
      if (keep_from > buffer_base_) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<std::ptrdiff_t>(keep_from - buffer_base_));
        buffer_base_ = keep_from;
      }
      complete_waiters();
      // More records may have arrived during the flush.
      if (!waiters_.empty()) start_flush();
    };
    // O_SYNC: a flush that grew the log file (every append does — i_size
    // is byte-granular) must also make the inode durable before
    // completing (the second write §5.2's EXT2 rows pay).
    if (on_grow_ && flush_target_ > grown_bytes_) {
      grown_bytes_ = flush_target_;
      const std::uint64_t new_sectors =
          (flush_target_ + disk::kSectorSize - 1) / disk::kSectorSize;
      on_grow_(new_sectors, finish);
    } else {
      finish();
    }
  };

  const std::uint32_t chunk_size =
      config_.sync_chunk_sectors == 0 ? sectors : config_.sync_chunk_sectors;
  fs->outstanding = (sectors + chunk_size - 1) / chunk_size;
  std::uint32_t issued = 0;
  while (issued < sectors) {
    const std::uint32_t chunk = std::min(sectors - issued, chunk_size);
    io::BlockAddr addr = config_.region_base;
    addr.lba = config_.region_base.lba + from_sector + issued;
    const std::span<const std::byte> data(
        fs->image.data() + static_cast<std::size_t>(issued) * disk::kSectorSize,
        static_cast<std::size_t>(chunk) * disk::kSectorSize);
    driver_.submit_write(addr, chunk, data, on_chunk_done);
    issued += chunk;
  }
}

void LogManager::restore_direct(Lsn lsn) {
  next_lsn_ = lsn;
  durable_lsn_ = lsn;
  buffer_.clear();
  buffer_base_ = lsn;
  flush_in_flight_ = false;
  waiters_.clear();
  deferred_commits_.clear();
}

void LogManager::restore(Lsn lsn, std::vector<std::byte> tail) {
  const Lsn tail_base = lsn / disk::kSectorSize * disk::kSectorSize;
  if (tail.size() != lsn - tail_base)
    throw std::invalid_argument("LogManager::restore: tail size mismatch");
  next_lsn_ = lsn;
  durable_lsn_ = lsn;
  buffer_ = std::move(tail);
  buffer_base_ = tail_base;
  flush_in_flight_ = false;
  waiters_.clear();
}

void LogManager::audit(audit::Report& report, bool quiescent) const {
  audit::Check& check = report.check("wal.sequence");
  check.require(durable_lsn_ <= next_lsn_, "durable LSN ahead of the append point");
  check.require(truncate_lsn_ <= durable_lsn_, "truncate point ahead of durability");
  check.require(buffer_base_ <= durable_lsn_,
                "buffered bytes start beyond the durable point");
  check.require(buffer_.size() == next_lsn_ - buffer_base_,
                "buffer size disagrees with its LSN span");
  if (flush_in_flight_)
    check.require(durable_lsn_ <= flush_target_ && flush_target_ <= next_lsn_,
                  "in-flight flush target outside (durable, next]");
  Lsn prev_target = 0;
  for (const Waiter& w : waiters_) {
    // complete_waiters() pops in order, so targets are FIFO-monotone and
    // nothing already-durable may linger.
    check.require(w.target > durable_lsn_, "waiter for an already-durable LSN");
    check.require(w.target <= next_lsn_, "waiter beyond the append point");
    check.require(w.target >= prev_target, "waiter targets out of FIFO order");
    prev_target = w.target;
  }
  if (quiescent) {
    check.require(!flush_in_flight_, "flush still in flight at a quiesce point");
    check.require(waiters_.empty(), "commit waiters pending at a quiesce point");
    check.require(durable_lsn_ == next_lsn_, "undurable log bytes at a quiesce point");
    check.require(deferred_commits_.empty(),
                  "deferred group commits unaccounted at a quiesce point");
  }
}

void LogManager::note_flush_span(sim::TimePoint submit_time) {
  if (h_flush_ == nullptr) return;
  const sim::Duration span = sim_.now() - submit_time;
  h_flush_->record(span);
  if (config_.flush_stall_bound > sim::Duration{0} && span > config_.flush_stall_bound) {
    c_flush_stalls_->inc();
    if (obs_->tracer.enabled())
      obs_->tracer.instant_value("req.stall.wal_flush", "wal", span.ns(), obs::kWalTid);
  }
}

void LogManager::complete_waiters() {
  while (!deferred_commits_.empty() && deferred_commits_.front().first <= durable_lsn_) {
    stats_.durability_lag += sim_.now() - deferred_commits_.front().second;
    ++stats_.lag_samples;
    deferred_commits_.pop_front();
  }
  while (!waiters_.empty() && waiters_.front().target <= durable_lsn_) {
    Waiter w = std::move(waiters_.front());
    waiters_.pop_front();
    stats_.flush_wait += sim_.now() - w.since;
    if (h_commit_wait_ != nullptr) h_commit_wait_->record(sim_.now() - w.since);
    if (w.done) w.done();
  }
}

}  // namespace trail::db

// Failure-injection suite: media corruption and damaged metadata, beyond
// the clean power-cut crashes of test_recovery.
#include <gtest/gtest.h>

#include <cstring>

#include "trail_fixture.hpp"

namespace trail::testing {
namespace {

using core::LogDiskLayout;
using disk::kSectorSize;

class FaultInjectionTest : public TrailFixture {
 protected:
  FaultInjectionTest() : TrailFixture(2) {}

  void corrupt_sector(disk::DiskDevice& dev, disk::Lba lba) {
    std::vector<std::byte> junk(kSectorSize);
    sim::Rng rng(lba * 7 + 1);
    for (auto& b : junk) b = std::byte(static_cast<std::uint8_t>(rng.next()));
    dev.store().write(lba, 1, junk);
  }
};

TEST_F(FaultInjectionTest, HeaderReplicaZeroCorruptionFallsBack) {
  start();
  write_sync({devices[0], 10}, make_pattern(2, 1));
  driver->unmount();
  driver.reset();

  // Destroy the primary header replica; mount must fall back to replica 1.
  const LogDiskLayout layout(log_disk->geometry());
  corrupt_sector(*log_disk, layout.header_lba(0));
  start();
  EXPECT_TRUE(driver->mounted());
  EXPECT_EQ(driver->epoch(), 2u);
  verify_all_acknowledged_durable();
}

TEST_F(FaultInjectionTest, AllReplicasCorruptedRefusesMount) {
  start();
  driver->unmount();
  driver.reset();
  const LogDiskLayout layout(log_disk->geometry());
  for (int r = 0; r < layout.replica_count(); ++r)
    corrupt_sector(*log_disk, layout.header_lba(r));
  // The driver refuses the disk outright: no replica carries the signature.
  EXPECT_THROW(core::TrailDriver(sim, *log_disk), std::invalid_argument);
}

TEST_F(FaultInjectionTest, ReplicaCorruptionDuringCrashStillRecovers) {
  start();
  for (auto& d : data_disks) d->crash_halt();
  for (int i = 0; i < 5; ++i)
    write_sync({devices[0], static_cast<disk::Lba>(i * 4)}, make_pattern(2, 10 + i));
  driver->crash();
  driver.reset();
  log_disk->restart();
  for (auto& d : data_disks) d->restart();
  // Replica 0 dies in the crash (e.g. a head landing): recovery must use
  // the survivors and still find the records.
  const LogDiskLayout layout(log_disk->geometry());
  corrupt_sector(*log_disk, layout.header_lba(0));
  start();
  EXPECT_EQ(driver->last_recovery().records_found, 5u);
  verify_all_acknowledged_durable();
}

TEST_F(FaultInjectionTest, GarbageOnUnusedTracksIsIgnored) {
  // Sprinkle random sectors over unused areas of a freshly formatted log
  // disk; they must not parse as records or derail recovery.
  start();
  sim::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const auto track = static_cast<disk::TrackId>(
        rng.uniform(10, static_cast<std::int64_t>(log_disk->geometry().track_count()) - 2));
    const auto base = log_disk->geometry().first_lba_of_track(track);
    corrupt_sector(*log_disk, base + static_cast<disk::Lba>(rng.uniform(
                                         0, log_disk->geometry().spt_of_track(track) - 1)));
  }
  for (auto& d : data_disks) d->crash_halt();
  write_sync({devices[0], 100}, make_pattern(2, 42));
  crash_and_remount();
  EXPECT_EQ(driver->last_recovery().records_found, 1u);
  verify_all_acknowledged_durable();
}

TEST_F(FaultInjectionTest, AdversarialPayloadMimicsRecordHeader) {
  // Write user data that is a byte-exact serialized record header with a
  // huge sequence_id. If the first-byte escaping failed, recovery would
  // pick it up as "youngest" and follow garbage pointers.
  start();
  core::RecordHeader fake;
  fake.batch_size = 1;
  fake.epoch = 1;               // matches the live epoch
  fake.sequence_id = 0xFFFFFF;  // "newer" than anything real
  fake.prev_sect = 12345;
  fake.log_head = 12345;
  fake.entries.resize(1);
  std::vector<std::byte> payload(kSectorSize);
  core::serialize_record_header(fake, payload);

  for (auto& d : data_disks) d->crash_halt();
  bool acked = false;
  driver->submit_write({devices[0], 500}, 1, payload, [&] { acked = true; });
  pump(acked);
  write_sync({devices[0], 700}, make_pattern(1, 7));
  crash_and_remount();
  // Exactly the two real records; the fake header was escaped to payload.
  EXPECT_EQ(driver->last_recovery().records_found, 2u);
  // And the adversarial payload round-trips byte-exactly.
  std::vector<std::byte> got(kSectorSize);
  data_disks[0]->store().read(500, 1, got);
  EXPECT_EQ(got, payload);
}

TEST_F(FaultInjectionTest, TornPayloadMidChainThrows) {
  // Corrupting an *acknowledged* record's payload is data loss beyond the
  // crash contract; recovery must detect it loudly (CRC) instead of
  // replaying garbage.
  start();
  for (auto& d : data_disks) d->crash_halt();
  std::vector<disk::Lba> header_lbas;
  for (int i = 0; i < 3; ++i)
    write_sync({devices[0], static_cast<disk::Lba>(i * 4)}, make_pattern(2, 30 + i));
  driver->crash();
  driver.reset();
  log_disk->restart();
  for (auto& d : data_disks) d->restart();

  // Find the OLDEST record's payload on the log disk and flip a byte.
  // (Scan the store offline for record headers; easiest via classify.)
  disk::SectorBuf sector{};
  disk::Lba oldest_payload = 0;
  std::uint32_t best_seq = ~0u;
  for (disk::Lba lba = 0; lba < log_disk->geometry().total_sectors(); ++lba) {
    if (!log_disk->store().is_written(lba)) continue;
    log_disk->store().read(lba, 1, sector);
    const auto hdr = core::parse_record_header(sector);
    if (hdr && hdr->epoch == 1 && hdr->sequence_id < best_seq) {
      best_seq = hdr->sequence_id;
      oldest_payload = lba + 1;
    }
  }
  ASSERT_NE(best_seq, ~0u);
  log_disk->store().read(oldest_payload, 1, sector);
  sector[100] ^= std::byte{0x01};
  log_disk->store().write(oldest_payload, 1, sector);

  driver = std::make_unique<core::TrailDriver>(sim, *log_disk);
  for (auto& d : data_disks) (void)driver->add_data_disk(*d);
  EXPECT_THROW(driver->mount(), std::runtime_error);
  driver.reset();
}

TEST_F(FaultInjectionTest, CrashDuringRecoveryWriteBackIsRecoverable) {
  // Power fails AGAIN while recovery is writing records back: the log
  // disk still holds everything (write-back only reads it), so a third
  // boot recovers cleanly.
  start();
  for (auto& d : data_disks) d->crash_halt();
  for (int i = 0; i < 6; ++i)
    write_sync({devices[0], static_cast<disk::Lba>(i * 4)}, make_pattern(2, 60 + i));
  driver->crash();
  driver.reset();
  log_disk->restart();
  for (auto& d : data_disks) d->restart();

  // Second boot: crash it partway through mount's recovery write-back by
  // bounding the simulator horizon.
  auto boot2 = std::make_unique<core::TrailDriver>(sim, *log_disk);
  for (auto& d : data_disks) (void)boot2->add_data_disk(*d);
  bool mounted2 = false;
  try {
    // Drive mount but cut the power after a bounded number of events.
    sim.set_event_limit(400);  // enough to start write-back, not finish
    boot2->mount();
    mounted2 = true;
  } catch (const sim::SimulationOverrun&) {
    // "power failed" mid-recovery.
  }
  sim.set_event_limit(0);
  boot2->crash();
  boot2.reset();
  log_disk->restart();
  for (auto& d : data_disks) d->restart();
  (void)mounted2;

  // Third boot: full recovery.
  start();
  verify_all_acknowledged_durable();
}

}  // namespace
}  // namespace trail::testing

// Wall-clock microbenchmarks (google-benchmark) for the hot paths.
//
// The headline: §3.1 claims the head-position prediction needs "less than
// one microsecond ... on a Pentium II 300 MHz machine"; BM_HeadPrediction
// verifies our implementation clears that bar on modern hardware by a
// wide margin. The rest track the cost of the codecs and the simulator
// core so regressions are visible.

#include <benchmark/benchmark.h>

#include "core/crc32.hpp"
#include "core/head_predictor.hpp"
#include "core/log_format.hpp"
#include "db/wal.hpp"
#include "disk/profile.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace trail;

void BM_HeadPrediction(benchmark::State& state) {
  const disk::DiskProfile profile = disk::st41601n();
  core::HeadPredictor predictor(profile.geometry, profile.rotation_time());
  predictor.set_delta(profile.command_overhead);
  predictor.set_reference(sim::TimePoint{0}, 100, 3);
  std::int64_t t = 1'000'000;
  for (auto _ : state) {
    t += 137'000;  // advancing timestamps, as in live prediction
    benchmark::DoNotOptimize(predictor.predict_sector(100, sim::TimePoint{t}));
  }
}
BENCHMARK(BM_HeadPrediction);

void BM_LbaToChs(benchmark::State& state) {
  const disk::DiskProfile profile = disk::st41601n();
  sim::Rng rng(1);
  const auto total = static_cast<std::int64_t>(profile.geometry.total_sectors());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        profile.geometry.to_chs(static_cast<disk::Lba>(rng.uniform(0, total - 1))));
  }
}
BENCHMARK(BM_LbaToChs);

// One full header sector is serialized per iteration regardless of batch
// size, so cost is reported as sector-bytes/second (batch size only
// changes how much of the sector carries entries). The entries_per_s
// rate shows the marginal per-entry cost — this replaces the old
// items/sec-free report where the /1 case misleadingly benched "slower"
// than /32 because each iteration's fixed 512-byte CRC dominated.
void BM_RecordHeaderEncode(benchmark::State& state) {
  core::RecordHeader hdr;
  hdr.batch_size = static_cast<std::uint32_t>(state.range(0));
  hdr.epoch = 3;
  hdr.sequence_id = 77;
  hdr.prev_sect = 1000;
  hdr.log_head = 900;
  hdr.entries.resize(hdr.batch_size);
  disk::SectorBuf sector{};
  for (auto _ : state) {
    core::serialize_record_header(hdr, sector);
    benchmark::DoNotOptimize(sector);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(disk::kSectorSize));
  state.counters["entries_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * state.range(0), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RecordHeaderEncode)->Arg(1)->Arg(8)->Arg(32);

void BM_RecordHeaderParse(benchmark::State& state) {
  core::RecordHeader hdr;
  hdr.batch_size = static_cast<std::uint32_t>(state.range(0));
  hdr.entries.resize(hdr.batch_size);
  disk::SectorBuf sector{};
  core::serialize_record_header(hdr, sector);
  for (auto _ : state) benchmark::DoNotOptimize(core::parse_record_header(sector));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(disk::kSectorSize));
  state.counters["entries_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * state.range(0), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RecordHeaderParse)->Arg(1)->Arg(32);

// 64 B ~ the header-CRC window granularity, 512 B one sector, 4 KiB a
// mid-size batch, 16 KiB a multi-sector payload image (the CI floor's
// shape). Uses the dispatched implementation.
void BM_Crc32(benchmark::State& state) {
  std::vector<std::byte> data(static_cast<std::size_t>(state.range(0)));
  sim::Rng rng(5);
  for (auto& b : data) b = std::byte(static_cast<std::uint8_t>(rng.next()));
  for (auto _ : state) benchmark::DoNotOptimize(core::crc32(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
  state.SetLabel(core::crc32_impl_name());
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(512)->Arg(4096)->Arg(16384);

// Per-tier throughput, independent of dispatch: the regression trail for
// each implementation (hw falls back to sliced on CPUs without CLMUL/CRC
// instructions — the label says which one actually ran).
void BM_Crc32Impl(benchmark::State& state, core::CrcImpl impl, const char* label) {
  std::vector<std::byte> data(static_cast<std::size_t>(state.range(0)));
  sim::Rng rng(5);
  for (auto& b : data) b = std::byte(static_cast<std::uint8_t>(rng.next()));
  for (auto _ : state) benchmark::DoNotOptimize(core::detail::crc32_with(impl, data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
  state.SetLabel(label);
}
BENCHMARK_CAPTURE(BM_Crc32Impl, table, core::CrcImpl::kTable, "table")->Arg(16384);
BENCHMARK_CAPTURE(BM_Crc32Impl, sliced, core::CrcImpl::kSliced, "sliced")->Arg(16384);
BENCHMARK_CAPTURE(BM_Crc32Impl, hw, core::CrcImpl::kHw, "hw")->Arg(16384);

// The tracer's hot record path with the delta/mask compact encoding: a
// realistic alternating event mix (span + counter on one lane). The
// bytes_per_event counter is the capture-side win over the old
// fixed-slot ring (sizeof(TraceEvent) per event).
void BM_TraceCapture(benchmark::State& state) {
  sim::Simulator simulator;
  obs::EventTracer tracer(simulator, 1 << 16);
  tracer.set_enabled(true);
  std::int64_t depth = 0;
  for (auto _ : state) {
    tracer.complete("log.append", "log", sim::TimePoint{depth * 1000}, sim::micros(2), 3);
    tracer.counter("depth", "io", depth & 15, 3);
    depth += 2;
  }
  benchmark::DoNotOptimize(tracer.size());
  state.SetItemsProcessed(state.iterations() * 2);
  if (tracer.size() > 0)
    state.counters["bytes_per_event"] =
        static_cast<double>(tracer.encoded_bytes()) / static_cast<double>(tracer.size());
}
BENCHMARK(BM_TraceCapture);

void BM_WalRecordEncode(benchmark::State& state) {
  db::WalRecord rec;
  rec.type = db::WalRecordType::kUpdate;
  rec.txn = 9;
  rec.table = 2;
  rec.key = 123456;
  rec.row.resize(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(db::LogManager::encode(rec));
}
BENCHMARK(BM_WalRecordEncode)->Arg(64)->Arg(512);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator simulator;
    int fired = 0;
    constexpr int kEvents = 10'000;
    for (int i = 0; i < kEvents; ++i)
      simulator.schedule(sim::micros(i), [&fired] { ++fired; });
    state.ResumeTiming();
    simulator.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SimulatorEventThroughput)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

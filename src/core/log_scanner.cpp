#include "core/log_scanner.hpp"

#include <algorithm>
#include <cstdio>

#include "core/crc32.hpp"

namespace trail::core {

LogScanner::LogScanner(const disk::DiskDevice& device)
    : device_(device), layout_(device.geometry()) {}

std::optional<ScannedRecord> LogScanner::parse_at(disk::Lba lba) const {
  const disk::Geometry& geom = device_.geometry();
  if (lba >= geom.total_sectors()) return std::nullopt;
  disk::SectorBuf sector{};
  device_.store().read(lba, 1, sector);
  const auto hdr = parse_record_header(sector);
  if (!hdr) return std::nullopt;

  ScannedRecord rec;
  rec.header_lba = lba;
  rec.track = geom.track_of_lba(lba);
  // Validate the payload CRC (payload is contiguous after the header and
  // never crosses the end of the disk by construction). Streamed one
  // sector at a time through the incremental CRC — the whole-image
  // staging vector the scan loop used to allocate per record is gone.
  if (lba + 1 + hdr->batch_size <= geom.total_sectors()) {
    Crc32 crc;
    disk::SectorBuf payload_sector{};
    for (std::uint32_t s = 0; s < hdr->batch_size; ++s) {
      device_.store().read(lba + 1 + s, 1, payload_sector);
      crc.update(payload_sector);
    }
    rec.payload_intact = crc.value() == hdr->payload_crc;
  }
  rec.header = std::move(*hdr);
  return rec;
}

std::optional<ScannedRecord> LogScanner::record_at(disk::Lba lba) const { return parse_at(lba); }

std::vector<ScannedRecord> LogScanner::records_of_epoch(std::uint32_t epoch) const {
  std::vector<ScannedRecord> out;
  const disk::Geometry& geom = device_.geometry();
  for (disk::Lba lba = 0; lba < geom.total_sectors(); ++lba) {
    if (!device_.store().is_written(lba)) continue;
    auto rec = parse_at(lba);
    if (rec && rec->header.epoch == epoch) out.push_back(std::move(*rec));
  }
  std::sort(out.begin(), out.end(), [](const ScannedRecord& a, const ScannedRecord& b) {
    return record_key(a.header) < record_key(b.header);
  });
  return out;
}

ScanReport LogScanner::scan() const {
  ScanReport report;
  const disk::Geometry& geom = device_.geometry();

  // Disk header replicas.
  disk::SectorBuf sector{};
  for (int r = 0; r < layout_.replica_count(); ++r) {
    device_.store().read(layout_.header_lba(r), 1, sector);
    if (const auto hdr = parse_disk_header(sector)) {
      if (report.intact_header_replicas == 0) report.disk_header = *hdr;
      ++report.intact_header_replicas;
    }
  }
  report.formatted = report.intact_header_replicas > 0;
  if (!report.formatted) return report;

  // Census. Only written sectors are inspected; pristine sectors count as
  // "other" implicitly by omission (we report scanned = written).
  std::optional<ScannedRecord> youngest;
  std::vector<std::uint32_t> used_sectors(geom.track_count(), 0);
  const std::uint32_t newest_epoch = report.disk_header.epoch;
  for (disk::Lba lba = 0; lba < geom.total_sectors(); ++lba) {
    if (!device_.store().is_written(lba)) continue;
    ++report.sectors_scanned;
    device_.store().read(lba, 1, sector);
    switch (classify_sector(sector)) {
      case SectorKind::kRecordHeader: {
        ++report.record_headers;
        auto rec = parse_at(lba);
        if (!rec) break;
        ++report.records_per_epoch[rec->header.epoch];
        if (rec->header.epoch <= newest_epoch) {
          if (!youngest || record_key(rec->header) > record_key(youngest->header))
            youngest = rec;
        }
        if (rec->header.epoch == newest_epoch)
          used_sectors[rec->track] += 1 + rec->header.batch_size;
        break;
      }
      case SectorKind::kPayload:
        ++report.payload_sectors;
        break;
      case SectorKind::kOther:
        ++report.other_sectors;
        break;
    }
  }
  report.track_utilization.resize(geom.track_count());
  for (disk::TrackId t = 0; t < geom.track_count(); ++t)
    report.track_utilization[t] =
        static_cast<double>(used_sectors[t]) / geom.spt_of_track(t);
  report.youngest = youngest;

  // Chain verification from the youngest record.
  if (!youngest) {
    report.chain_verified = true;  // empty log is consistent
    return report;
  }
  std::uint64_t prev_key = 0;
  bool first = true;
  std::uint8_t unit = 0;  // single-disk scanner: pointers must stay local
  disk::Lba lba = youngest->header_lba;
  const std::uint32_t bound = youngest->header.log_head;
  for (;;) {
    auto rec = parse_at(lba);
    if (!rec) {
      report.chain_error = "prev_sect points at a non-record sector";
      return report;
    }
    if (!rec->payload_intact && !first) {
      report.chain_error = "torn payload below the youngest record";
      return report;
    }
    if (!first && record_key(rec->header) >= prev_key) {
      report.chain_error = "record keys not strictly decreasing";
      return report;
    }
    prev_key = record_key(rec->header);
    first = false;
    ++report.chain_length;
    if (report.chain_length > report.record_headers) {
      report.chain_error = "chain longer than the record census (cycle?)";
      return report;
    }
    const std::uint32_t self = encode_log_ptr(unit, static_cast<std::uint32_t>(lba));
    if (self == bound) break;
    if (rec->header.prev_sect == kNoPrevRecord) break;
    if (log_ptr_unit(rec->header.prev_sect) != unit) {
      // Cross-disk chain: out of this single-disk scanner's scope.
      report.chain_error = "chain crosses to another log disk (scan that disk too)";
      return report;
    }
    lba = log_ptr_lba(rec->header.prev_sect);
  }
  report.chain_verified = true;
  return report;
}

std::string LogScanner::describe(const ScannedRecord& record) {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "record epoch=%u seq=%u @lba %llu (track %u): %u payload sector%s, %s\n",
                record.header.epoch, record.header.sequence_id,
                static_cast<unsigned long long>(record.header_lba), record.track,
                record.header.batch_size, record.header.batch_size == 1 ? "" : "s",
                record.payload_intact ? "payload OK" : "payload TORN");
  out += buf;
  std::snprintf(buf, sizeof buf, "  prev_sect=%#x log_head=%#x\n", record.header.prev_sect,
                record.header.log_head);
  out += buf;
  for (std::uint32_t i = 0; i < record.header.batch_size; ++i) {
    const RecordEntry& e = record.header.entries[i];
    if (e.data_major == kDirectLogMajor)
      std::snprintf(buf, sizeof buf, "  [%2u] log_lba=%u  DIRECT cookie=%u first_byte=%02x\n",
                    i, e.log_lba, e.data_lba, e.first_data_byte);
    else
      std::snprintf(buf, sizeof buf,
                    "  [%2u] log_lba=%u -> dev(%u,%u) lba=%u first_byte=%02x\n", i, e.log_lba,
                    e.data_major, e.data_minor, e.data_lba, e.first_data_byte);
    out += buf;
  }
  return out;
}

}  // namespace trail::core

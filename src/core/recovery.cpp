#include "core/recovery.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "core/crc32.hpp"

namespace trail::core {

RecoveryManager::RecoveryManager(sim::Simulator& sim, std::vector<disk::DiskDevice*> log_disks,
                                 DataWriteFn data_write)
    : sim_(sim), data_write_(std::move(data_write)) {
  if (log_disks.empty() || log_disks.size() > kMaxLogUnits)
    throw std::invalid_argument("RecoveryManager: 1..15 log disks required");
  for (disk::DiskDevice* device : log_disks) {
    Unit unit;
    unit.device = device;
    const LogDiskLayout layout(device->geometry());
    const auto reserved = layout.reserved_tracks();
    for (disk::TrackId t = 0; t < device->geometry().track_count(); ++t)
      if (std::find(reserved.begin(), reserved.end(), t) == reserved.end())
        unit.usable.push_back(t);
    units_.push_back(std::move(unit));
  }
}

void RecoveryManager::read_sync(std::uint8_t unit, disk::Lba lba, std::uint32_t count,
                                std::span<std::byte> out) {
  bool done = false;
  units_.at(unit).device->read(lba, count, out, [&] { done = true; });
  while (!done) {
    if (!sim_.step()) throw std::runtime_error("RecoveryManager: simulation stalled");
  }
}

RecoveryManager::TrackKey RecoveryManager::scan_track(std::uint8_t unit,
                                                      std::size_t usable_index,
                                                      std::uint32_t target_epoch,
                                                      RecoveryStats& stats) {
  const Unit& u = units_.at(unit);
  const disk::TrackId track = u.usable[usable_index];
  const disk::Geometry& geom = u.device->geometry();
  const std::uint32_t spt = geom.spt_of_track(track);
  const disk::Lba base = geom.first_lba_of_track(track);
  std::vector<std::byte> buf(static_cast<std::size_t>(spt) * disk::kSectorSize);
  read_sync(unit, base, spt, buf);
  ++stats.tracks_scanned;
  if (obs_ != nullptr) {
    obs_->metrics.counter(metric_prefix_ + "recovery.tracks_scanned").inc();
    if (obs_->tracer.enabled())
      obs_->tracer.instant_value("recovery.probe", "recovery", track, tid_);
  }

  TrackKey best;
  for (std::uint32_t s = 0; s < spt; ++s) {
    const std::span<const std::byte> sector(
        buf.data() + static_cast<std::size_t>(s) * disk::kSectorSize, disk::kSectorSize);
    const auto hdr = parse_record_header(sector);
    if (!hdr || hdr->epoch > target_epoch) continue;
    if (!best.present || record_key(*hdr) > best.key) {
      best.present = true;
      best.key = record_key(*hdr);
      best.unit = unit;
      best.header_lba = base + s;
    }
  }
  return best;
}

RecoveryManager::TrackKey RecoveryManager::locate_sequential(std::uint8_t unit,
                                                             std::uint32_t target_epoch,
                                                             RecoveryStats& stats) {
  TrackKey best;
  for (std::size_t i = 0; i < units_.at(unit).usable.size(); ++i) {
    const TrackKey k = scan_track(unit, i, target_epoch, stats);
    if (k.present && (!best.present || k.key > best.key)) best = k;
  }
  return best;
}

RecoveryManager::TrackKey RecoveryManager::locate_binary(std::uint8_t unit,
                                                         std::uint32_t target_epoch,
                                                         RecoveryStats& stats,
                                                         std::uint32_t anchor_probes) {
  const std::size_t n = units_.at(unit).usable.size();

  // Phase A: probe evenly-spread tracks for any record of the crashed
  // epoch to anchor the search. FIFO allocation makes the stamped tracks
  // one contiguous circular arc, so a probe grid finds it whenever the
  // arc is at least n/probes tracks long.
  std::size_t anchor_idx = n;  // sentinel: not found
  TrackKey anchor_key;
  const std::size_t probes = std::min<std::size_t>(anchor_probes == 0 ? 1 : anchor_probes, n);
  for (std::size_t k = 0; k < probes; ++k) {
    const std::size_t idx = k * n / probes;
    const TrackKey key = scan_track(unit, idx, target_epoch, stats);
    if (key.present) {
      anchor_idx = idx;
      anchor_key = key;
      break;
    }
  }
  if (anchor_idx == n) {
    // Short or empty log: fall back to the exhaustive scan.
    stats.sequential_fallback = true;
    return locate_sequential(unit, target_epoch, stats);
  }

  // Phase B: binary-search the last rotated position j (clockwise offset
  // from the anchor) whose track key is >= the anchor's.
  auto key_at = [&](std::size_t j) {
    return scan_track(unit, (anchor_idx + j) % n, target_epoch, stats);
  };

  std::size_t lo = 0;  // known-true rotated position
  TrackKey lo_key = anchor_key;
  std::size_t hi = n;  // exclusive upper bound
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    TrackKey k = key_at(mid);
    std::size_t j = mid;
    if (!k.present) {
      // `mid` was never stamped. The stamped region is one contiguous
      // circular segment containing lo, so "stamped?" is a monotone
      // predicate on (lo, mid]: bisect for the last stamped position.
      std::size_t slo = lo;   // stamped
      std::size_t shi = mid;  // gap
      TrackKey slo_key;       // key at slo when slo > lo
      while (shi - slo > 1) {
        const std::size_t m = slo + (shi - slo) / 2;
        const TrackKey km = key_at(m);
        if (km.present) {
          slo = m;
          slo_key = km;
        } else {
          shi = m;
        }
      }
      if (slo == lo) {
        // Nothing stamped in (lo, mid]: the arc ends at lo.
        hi = lo + 1;
        continue;
      }
      j = slo;
      k = slo_key;
    }
    if (k.key >= anchor_key.key) {
      lo = j;
      lo_key = k;
    } else {
      hi = j;
    }
  }
  return lo_key;
}

RecoveryManager::Outcome RecoveryManager::run(std::uint32_t target_epoch,
                                              const Options& options) {
  Outcome outcome;
  RecoveryStats& stats = outcome.stats;

  // ---- Phase 1: locate the youngest active write record ----
  const sim::TimePoint locate_start = sim_.now();
  obs::ScopedSpan locate_span(obs_ != nullptr ? &obs_->tracer : nullptr, "recovery.locate",
                              "recovery", tid_);
  TrackKey youngest;
  for (std::uint8_t unit = 0; unit < units_.size(); ++unit) {
    TrackKey candidate;
    if (options.sequential_locate) {
      stats.sequential_fallback = true;
      candidate = locate_sequential(unit, target_epoch, stats);
    } else {
      candidate = locate_binary(unit, target_epoch, stats, options.anchor_probes);
    }
    if (candidate.present && (!youngest.present || candidate.key > youngest.key))
      youngest = candidate;
  }
  stats.locate_time = sim_.now() - locate_start;
  locate_span.finish();
  if (!youngest.present) return outcome;  // nothing was logged in the crashed epoch

  // ---- Phase 2: rebuild the pending-record set ----
  const sim::TimePoint rebuild_start = sim_.now();
  obs::ScopedSpan rebuild_span(obs_ != nullptr ? &obs_->tracer : nullptr, "recovery.rebuild",
                               "recovery", tid_);

  std::uint8_t unit = youngest.unit;
  disk::Lba lba = youngest.header_lba;
  bool have_bound = false;
  std::uint32_t bound_ptr = 0;
  std::uint64_t prev_key = 0;
  std::vector<RecoveredRecord> chain;  // youngest -> oldest

  for (;;) {
    const disk::Geometry& geom = units_.at(unit).device->geometry();
    // One windowed read fetches the header plus (optimistically) the whole
    // payload, so each chain step usually costs a single disk access. The
    // window is clamped to the record's track (payload never crosses it).
    const disk::TrackId lba_track = geom.track_of_lba(lba);
    const disk::Lba track_end = geom.first_lba_of_track(lba_track) + geom.spt_of_track(lba_track);
    const auto window =
        static_cast<std::uint32_t>(std::min<disk::Lba>(1 + kMaxTrailBatch, track_end - lba));
    std::vector<std::byte> window_buf(static_cast<std::size_t>(window) * disk::kSectorSize);
    read_sync(unit, lba, window, window_buf);
    const std::span<const std::byte> header_sector(window_buf.data(), disk::kSectorSize);
    auto hdr = parse_record_header(header_sector);
    if (!hdr || hdr->epoch > target_epoch)
      throw std::runtime_error("recovery: prev_sect chain reached an invalid record header");
    if (!chain.empty() || stats.records_dropped_torn > 0) {
      if (record_key(*hdr) >= prev_key)
        throw std::runtime_error("recovery: record keys not decreasing along chain");
    }
    prev_key = record_key(*hdr);

    // Payload sectors follow the header contiguously. The CRC is folded
    // into assembly with crc32_combine: each piece (window slice, spill
    // read) is checksummed as it lands, so the image is never re-walked
    // for a separate payload_image_crc pass.
    std::vector<std::byte> payload(static_cast<std::size_t>(hdr->batch_size) * disk::kSectorSize);
    std::uint32_t payload_crc = 0;
    if (1 + hdr->batch_size <= window) {
      std::memcpy(payload.data(), window_buf.data() + disk::kSectorSize, payload.size());
      payload_crc = crc32(payload);
    } else {
      const std::size_t head_bytes = static_cast<std::size_t>(window - 1) * disk::kSectorSize;
      std::memcpy(payload.data(), window_buf.data() + disk::kSectorSize, head_bytes);
      const std::span<std::byte> tail = std::span<std::byte>(payload).subspan(head_bytes);
      read_sync(unit, lba + window, hdr->batch_size - (window - 1), tail);
      payload_crc = crc32_combine(crc32(std::span<const std::byte>(payload.data(), head_bytes)),
                                  crc32(tail), tail.size());
    }
    const bool intact = payload_crc == hdr->payload_crc;

    if (!intact) {
      // Only the final (unacknowledged) physical write can be torn; by
      // then we must not have collected any intact newer record.
      if (!chain.empty())
        throw std::runtime_error("recovery: torn record below an intact one");
      ++stats.records_dropped_torn;
      // Keys strictly decrease along the walk, so the last torn record
      // seen carries the oldest torn key.
      stats.oldest_torn_key = record_key(*hdr);
    } else {
      if (!have_bound) {
        // The newest *intact* record's log_head bounds the backward walk.
        have_bound = true;
        bound_ptr = hdr->log_head;
      }
      RecoveredRecord rec;
      rec.log_unit = unit;
      rec.header_lba = lba;
      rec.track = geom.track_of_lba(lba);
      // Restore the original first byte of every payload sector.
      for (std::uint32_t i = 0; i < hdr->batch_size; ++i)
        unescape_payload_sector(
            std::span<std::byte>(payload.data() + static_cast<std::size_t>(i) * disk::kSectorSize,
                                 disk::kSectorSize),
            hdr->entries[i].first_data_byte);
      rec.payload = std::move(payload);
      rec.header = std::move(*hdr);
      chain.push_back(std::move(rec));
      hdr.reset();
    }

    const RecordHeader& cur =
        chain.empty() ? *parse_record_header(header_sector) : chain.back().header;
    const std::uint32_t self_ptr = encode_log_ptr(unit, static_cast<std::uint32_t>(lba));
    if (have_bound && self_ptr == bound_ptr) break;  // reached the oldest live record
    if (cur.prev_sect == kNoPrevRecord) break;       // first record of the epoch
    unit = log_ptr_unit(cur.prev_sect);
    if (unit >= units_.size())
      throw std::runtime_error("recovery: prev_sect names an unknown log disk");
    lba = log_ptr_lba(cur.prev_sect);
  }

  std::reverse(chain.begin(), chain.end());  // ascending key
  stats.records_found = static_cast<std::uint32_t>(chain.size());
  stats.rebuild_time = sim_.now() - rebuild_start;
  rebuild_span.finish();
  outcome.pending = std::move(chain);
  if (obs_ != nullptr) {
    obs_->metrics.counter(metric_prefix_ + "recovery.records_found").inc(stats.records_found);
    // Leave a flight-recorder trail of what was rebuilt: one summary per
    // recovered record (id = sequence, shard = log unit), flagged
    // kFlagRecovered so a post-recovery dump separates replay from new
    // traffic.
    for (const RecoveredRecord& rec : outcome.pending) {
      obs::FlightRecord fr;
      fr.id = rec.header.sequence_id;
      fr.shard = rec.log_unit;
      fr.sectors = rec.header.batch_size;
      fr.flags = obs::FlightRecord::kFlagRecovered;
      fr.submit_ns = sim_.now().ns();
      obs_->flight.push(fr);
    }
  }

  // ---- Phase 3: write pending records back to the data disks ----
  if (options.write_back && !outcome.pending.empty()) write_back(outcome.pending, stats);

  return outcome;
}

void RecoveryManager::write_back(const std::vector<RecoveredRecord>& pending,
                                 RecoveryStats& stats) {
  if (pending.empty()) return;
  if (!data_write_) throw std::logic_error("recovery: write-back requested without DataWriteFn");
  const sim::TimePoint wb_start = sim_.now();
  obs::ScopedSpan wb_span(obs_ != nullptr ? &obs_->tracer : nullptr, "recovery.writeback",
                          "recovery", tid_);
  for (const RecoveredRecord& rec : pending) {
    // Direct-log records have no data-disk home; the mounting driver
    // re-adopts them and the client replays from their payloads.
    if (rec.header.entries[0].data_major == kDirectLogMajor) continue;
    // Group entries into contiguous runs per device.
    std::uint32_t i = 0;
    while (i < rec.header.batch_size) {
      std::uint32_t j = i + 1;
      const RecordEntry& e0 = rec.header.entries[i];
      while (j < rec.header.batch_size) {
        const RecordEntry& e = rec.header.entries[j];
        if (e.data_major != e0.data_major || e.data_minor != e0.data_minor ||
            e.data_lba != e0.data_lba + (j - i))
          break;
        ++j;
      }
      const std::span<const std::byte> run(
          rec.payload.data() + static_cast<std::size_t>(i) * disk::kSectorSize,
          static_cast<std::size_t>(j - i) * disk::kSectorSize);
      bool done = false;
      data_write_(io::DeviceId{e0.data_major, e0.data_minor}, e0.data_lba, run,
                  [&] { done = true; });
      while (!done) {
        if (!sim_.step()) throw std::runtime_error("recovery: simulation stalled");
      }
      stats.sectors_written_back += j - i;
      i = j;
    }
  }
  stats.writeback_time += sim_.now() - wb_start;
}

}  // namespace trail::core

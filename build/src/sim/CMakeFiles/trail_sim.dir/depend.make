# Empty dependencies file for trail_sim.
# This may be replaced when dependencies are built.

// Software-only disk-head position prediction (§3.1).
//
// The predictor never looks inside the DiskDevice model. Its only inputs
// are what the real Trail driver had: the disk geometry (read off the log
// disk at mount), the nominal rotation time, timestamps of completed
// commands, and the empirically calibrated δ that covers command
// processing overhead. A reference point (T0, LBA0) is refreshed on every
// completed log-disk operation; predictions are the paper's formula
//
//   S1 = ((T1 - T0) mod RotateTime) / RotateTime * SPT + S0 + δ) mod SPT
//
// generalised across tracks/zones by working in angular units, so a
// reference taken on one track can predict a landing sector on another
// (needed for the "closest sector on the next track" repositioning).
#pragma once

#include <cstdint>

#include "disk/geometry.hpp"
#include "sim/time.hpp"

namespace trail::core {

class HeadPredictor {
 public:
  /// `rotate_time` is the *nominal* rotation period (from the geometry
  /// block); real drives drift, which is why references must be refreshed.
  HeadPredictor(const disk::Geometry& geometry, sim::Duration rotate_time);

  /// δ expressed as time: how far (in rotation) the platter advances
  /// between issuing a command and its media phase beginning.
  void set_delta(sim::Duration delta) { delta_ = delta; }
  [[nodiscard]] sim::Duration delta() const { return delta_; }
  /// δ in sectors of `track` (the paper's unit; varies across zones).
  [[nodiscard]] std::uint32_t delta_sectors(disk::TrackId track) const;

  /// Record that at time `t0` the head had just finished passing `sector`
  /// on `track` (i.e. it sits at that sector's trailing edge). This is the
  /// state after a completed read/write whose last sector was `sector`.
  void set_reference(sim::TimePoint t0, disk::TrackId track, std::uint32_t sector);

  [[nodiscard]] bool has_reference() const { return has_reference_; }
  [[nodiscard]] disk::TrackId reference_track() const { return ref_track_; }
  [[nodiscard]] sim::TimePoint reference_time() const { return ref_time_; }

  /// Predicted platter angle (fraction of a revolution, [0,1)) under the
  /// head at time `t`, *without* the δ compensation.
  [[nodiscard]] double angle_at(sim::TimePoint t) const;

  /// The first sector on `track` whose leading edge the head can still
  /// reach for a command *issued* at time `t` — i.e. the sector after the
  /// position the platter will have advanced to once the command overhead
  /// (δ) has elapsed. Writing at or after this sector costs no extra
  /// rotation; writing before it costs nearly a full revolution.
  [[nodiscard]] std::uint32_t predict_sector(disk::TrackId track, sim::TimePoint t) const;

  /// Estimated head-positioning cost of a write issued at time `t` whose
  /// first sector is `sector` on `track`: command overhead (δ) plus the
  /// rotational wait until that sector's leading edge passes under the
  /// head. Built from the same published characteristics as
  /// predict_sector — it is the model's own claim of its positioning
  /// share, which the attribution layer charges to `req.phase.position`.
  [[nodiscard]] sim::Duration position_time(disk::TrackId track, std::uint32_t sector,
                                            sim::TimePoint t) const;

 private:
  const disk::Geometry& geometry_;
  sim::Duration rotate_time_;
  sim::Duration delta_{0};
  bool has_reference_ = false;
  sim::TimePoint ref_time_;
  disk::TrackId ref_track_ = 0;
  double ref_angle_ = 0.0;  // trailing-edge angle at ref_time_
};

}  // namespace trail::core

// Clang Thread Safety Analysis attribute macros (trail::sync).
//
// These wrap the `capability`-family attributes so that annotated code
// compiles as plain C++ everywhere and becomes a compile-time proof
// obligation under Clang: with `-Wthread-safety` (promoted to an error
// by TRAIL_WERROR), touching a TRAIL_GUARDED_BY member without holding
// its mutex, or calling a TRAIL_REQUIRES function without the
// capability, fails the build. GCC and other compilers see empty
// macros — the annotations are documentation there, and the TSan CI
// job provides the dynamic check.
//
// Conventions (enforced by scripts/lint.py):
//   * every first-party mutex is a trail::sync type — raw std::mutex /
//     std::condition_variable never appear outside src/sync/;
//   * every mutable member of a class that owns a sync::Mutex is either
//     TRAIL_GUARDED_BY(that mutex), a std::atomic, or const.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define TRAIL_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TRAIL_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a type as a capability (a lockable resource).
#define TRAIL_CAPABILITY(x) TRAIL_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define TRAIL_SCOPED_CAPABILITY TRAIL_THREAD_ANNOTATION(scoped_lockable)

/// Data members readable/writable only while holding the capability.
#define TRAIL_GUARDED_BY(x) TRAIL_THREAD_ANNOTATION(guarded_by(x))

/// Pointer members whose *pointee* is protected by the capability.
#define TRAIL_PT_GUARDED_BY(x) TRAIL_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-ordering declarations.
#define TRAIL_ACQUIRED_BEFORE(...) TRAIL_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define TRAIL_ACQUIRED_AFTER(...) TRAIL_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function attributes: the function must be called with / without the
/// capability held.
#define TRAIL_REQUIRES(...) TRAIL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define TRAIL_REQUIRES_SHARED(...) \
  TRAIL_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define TRAIL_EXCLUDES(...) TRAIL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function attributes: the function acquires / releases the capability.
#define TRAIL_ACQUIRE(...) TRAIL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define TRAIL_ACQUIRE_SHARED(...) \
  TRAIL_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define TRAIL_RELEASE(...) TRAIL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TRAIL_RELEASE_SHARED(...) \
  TRAIL_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TRAIL_TRY_ACQUIRE(...) TRAIL_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Returns a reference to the capability protecting the returned data.
#define TRAIL_RETURN_CAPABILITY(x) TRAIL_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for functions the analysis cannot model; every use needs
/// a comment saying why.
#define TRAIL_NO_THREAD_SAFETY_ANALYSIS TRAIL_THREAD_ANNOTATION(no_thread_safety_analysis)

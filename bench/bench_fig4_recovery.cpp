// Figure 4: crash-recovery overhead.
//
//  (a) Breakdown into locate / rebuild / write-back as the number of
//      pending write records Q varies 32..256. The paper's locate phase
//      costs ~450 ms: ~20 binary-search track scans of the 35,717-track
//      log disk at 5400 RPM.
//  (b) Recovery with vs without the write-back phase: skipping it (the
//      records stay live and drain in the background) is >3.5x faster at
//      Q = 256 because write-back does random data-disk I/O.
//
// Setup mirrors the paper's steady state: the log ring is first stamped
// by a long write workload (so the binary search sees a wrapped log),
// then the data disks are halted so exactly Q acknowledged records are
// pending at the crash.

#include <fstream>

#include "harness.hpp"

namespace trail::bench {
namespace {

struct RecoveryRun {
  core::RecoveryStats stats;
  double total_ms;
  double mount_ms;  // full mount virtual time (headers + recovery + stamping)
};

RecoveryRun run_recovery(std::uint32_t pending_records, bool write_back,
                         bool sequential_locate, std::uint32_t prefill_writes,
                         std::uint32_t pipeline_depth = 8, bool packed_tracks = false) {
  // Default (paper Fig. 4): one record per track (threshold 0, no
  // batching) — every prefill write stamps one track of the ring.
  // packed_tracks instead keeps the production utilization threshold, so
  // tracks fill with many records before the allocator moves on — the
  // realistic steady state the streaming rebuild is built for.
  core::TrailConfig config;
  if (!packed_tracks) config.track_utilization_threshold = 0.0;
  config.max_requests_per_physical = 1;
  TrailStack stack(2, config);
  std::vector<std::byte> sector(disk::kSectorSize, std::byte{0x42});
  sim::Rng rng(1234);

  // Phase A: stamp a long arc of the ring (records committed + freed, so
  // only their stale images remain — exactly the disk state after hours
  // of operation).
  {
    int acked = 0;
    for (std::uint32_t i = 0; i < prefill_writes; ++i) {
      const auto dev = stack.devices[i % stack.devices.size()];
      stack.driver->submit_write(
          io::BlockAddr{dev, static_cast<disk::Lba>(rng.uniform(0, 1 << 20))}, 1, sector,
          [&acked] { ++acked; });
    }
    while (acked < static_cast<int>(prefill_writes)) {
      if (!stack.sim.step()) throw std::runtime_error("fig4: prefill stalled");
    }
    bool drained = false;
    stack.driver->drain([&] { drained = true; });
    while (!drained) {
      if (!stack.sim.step()) throw std::runtime_error("fig4: drain stalled");
    }
  }

  // Phase B: halt the data disks and accumulate exactly Q pending records.
  for (auto& d : stack.data_disks) d->crash_halt();
  {
    int acked = 0;
    for (std::uint32_t i = 0; i < pending_records; ++i) {
      const auto dev = stack.devices[i % stack.devices.size()];
      stack.driver->submit_write(
          io::BlockAddr{dev, static_cast<disk::Lba>(rng.uniform(0, 1 << 20))}, 1, sector,
          [&acked] { ++acked; });
      // One record per physical write: wait for the ack before the next.
      while (acked < static_cast<int>(i) + 1) {
        if (!stack.sim.step()) throw std::runtime_error("fig4: pending stalled");
      }
    }
  }

  // Phase C: power failure, reboot, recover.
  stack.driver->crash();
  stack.log_disk->restart();
  for (auto& d : stack.data_disks) d->restart();

  core::TrailConfig recover_cfg;
  recover_cfg.recovery_write_back = write_back;
  recover_cfg.recovery_sequential_locate = sequential_locate;
  recover_cfg.recovery_pipeline_depth = pipeline_depth;
  auto driver2 = std::make_unique<core::TrailDriver>(stack.sim, *stack.log_disk, recover_cfg);
  for (auto& d : stack.data_disks) (void)driver2->add_data_disk(*d);
  const sim::TimePoint t0 = stack.sim.now();
  driver2->mount();
  RecoveryRun run;
  run.stats = driver2->last_recovery();
  run.total_ms =
      (run.stats.locate_time + run.stats.rebuild_time + run.stats.writeback_time).ms();
  run.mount_ms = (stack.sim.now() - t0).ms();
  return run;
}

struct ShardedMountRun {
  core::ShardedRecoveryStats stats;
  double mount_ms;  // full array mount virtual time
};

/// Crash a loaded N-shard array, then measure the remount's virtual time
/// with recovery adopting (no write-back) so the cost under test is the
/// per-shard locate + rebuild on the N independent log disks.
ShardedMountRun run_sharded_recovery(std::size_t shards, std::uint32_t pending_records,
                                     std::uint32_t prefill_writes, bool overlapped,
                                     std::uint32_t pipeline_depth) {
  core::ShardedConfig config;
  config.shard.track_utilization_threshold = 0.0;
  config.shard.max_requests_per_physical = 1;
  ShardedStack stack(shards, 2, config);
  std::vector<std::byte> sector(disk::kSectorSize, std::byte{0x42});
  sim::Rng rng(1234);

  {
    int acked = 0;
    for (std::uint32_t i = 0; i < prefill_writes; ++i) {
      const auto dev = stack.devices[i % stack.devices.size()];
      stack.driver->submit_write(
          io::BlockAddr{dev, static_cast<disk::Lba>(rng.uniform(0, 1 << 20))}, 1, sector,
          [&acked] { ++acked; });
    }
    while (acked < static_cast<int>(prefill_writes)) {
      if (!stack.sim.step()) throw std::runtime_error("fig4: sharded prefill stalled");
    }
    bool drained = false;
    stack.driver->drain([&] { drained = true; });
    while (!drained) {
      if (!stack.sim.step()) throw std::runtime_error("fig4: sharded drain stalled");
    }
  }

  for (auto& d : stack.data_disks) d->crash_halt();
  {
    int acked = 0;
    for (std::uint32_t i = 0; i < pending_records; ++i) {
      const auto dev = stack.devices[i % stack.devices.size()];
      stack.driver->submit_write(
          io::BlockAddr{dev, static_cast<disk::Lba>(rng.uniform(0, 1 << 20))}, 1, sector,
          [&acked] { ++acked; });
      while (acked < static_cast<int>(i) + 1) {
        if (!stack.sim.step()) throw std::runtime_error("fig4: sharded pending stalled");
      }
    }
  }

  stack.driver->crash();
  for (auto& d : stack.log_disks) d->restart();
  for (auto& d : stack.data_disks) d->restart();

  core::ShardedConfig recover_cfg;
  recover_cfg.shard.recovery_write_back = false;
  recover_cfg.shard.recovery_pipeline_depth = pipeline_depth;
  recover_cfg.overlapped_mount = overlapped;
  std::vector<disk::DiskDevice*> raw;
  for (auto& d : stack.log_disks) raw.push_back(d.get());
  auto driver2 = std::make_unique<core::ShardedDriver>(stack.sim, raw, recover_cfg);
  for (auto& d : stack.data_disks) (void)driver2->add_data_disk(*d);
  const sim::TimePoint t0 = stack.sim.now();
  driver2->mount();
  ShardedMountRun run;
  run.mount_ms = (stack.sim.now() - t0).ms();
  run.stats = driver2->last_recovery();
  return run;
}

}  // namespace
}  // namespace trail::bench

int main(int argc, char** argv) {
  using namespace trail::bench;
  namespace sim = trail::sim;

  // Stamp most of a (paper-geometry) ring: the ST41601N has 35,714 usable
  // tracks; a full stamp takes a while, so scale the ring coverage via env.
  // Stamp most of the 35,714 usable tracks so the binary search sees the
  // paper's wrapped-log steady state (override for quick runs).
  std::uint32_t prefill = 30'000;
  if (const char* env = std::getenv("TRAIL_FIG4_PREFILL"))
    prefill = static_cast<std::uint32_t>(std::atoi(env));
  const char* json_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--json") json_path = argv[i + 1];
  std::string json = "{\n  \"fig4a\": [";

  print_heading("Figure 4(a): recovery-time breakdown vs pending records Q (prefill " +
                std::to_string(prefill) + " tracks)");
  sim::TablePrinter table_a({"Q", "locate (ms)", "tracks scanned", "rebuild (ms)",
                             "write-back (ms)", "total (ms)"});
  bool first_row = true;
  for (const std::uint32_t q : {32u, 64u, 128u, 256u}) {
    const RecoveryRun run = run_recovery(q, /*write_back=*/true, false, prefill);
    table_a.add_row({sim::TablePrinter::fmt_int(q),
                     sim::TablePrinter::fmt(run.stats.locate_time.ms(), 0),
                     sim::TablePrinter::fmt_int(run.stats.tracks_scanned),
                     sim::TablePrinter::fmt(run.stats.rebuild_time.ms(), 0),
                     sim::TablePrinter::fmt(run.stats.writeback_time.ms(), 0),
                     sim::TablePrinter::fmt(run.total_ms, 0)});
    char row[256];
    std::snprintf(row, sizeof(row),
                  "%s\n    {\"q\": %u, \"locate_ms\": %.3f, \"rebuild_ms\": %.3f, "
                  "\"writeback_ms\": %.3f, \"total_ms\": %.3f}",
                  first_row ? "" : ",", q, run.stats.locate_time.ms(),
                  run.stats.rebuild_time.ms(), run.stats.writeback_time.ms(), run.total_ms);
    json += row;
    first_row = false;
  }
  table_a.print();
  std::printf("(paper: locate ~450 ms via ~20 track scans of 35,717 tracks)\n");
  json += "\n  ],\n";

  print_heading("Recovery pipeline: depth 1 (serial) vs depth 8, packed tracks (Q = 256)");
  {
    const RecoveryRun d1 =
        run_recovery(256, /*write_back=*/true, false, prefill, 1, /*packed_tracks=*/true);
    const RecoveryRun d8 =
        run_recovery(256, /*write_back=*/true, false, prefill, 8, /*packed_tracks=*/true);
    sim::TablePrinter t({"depth", "locate (ms)", "rebuild (ms)", "write-back (ms)",
                         "mount (ms)"});
    t.add_row({"1", sim::TablePrinter::fmt(d1.stats.locate_time.ms(), 0),
               sim::TablePrinter::fmt(d1.stats.rebuild_time.ms(), 0),
               sim::TablePrinter::fmt(d1.stats.writeback_time.ms(), 0),
               sim::TablePrinter::fmt(d1.mount_ms, 0)});
    t.add_row({"8", sim::TablePrinter::fmt(d8.stats.locate_time.ms(), 0),
               sim::TablePrinter::fmt(d8.stats.rebuild_time.ms(), 0),
               sim::TablePrinter::fmt(d8.stats.writeback_time.ms(), 0),
               sim::TablePrinter::fmt(d8.mount_ms, 0)});
    t.print();
    const double rebuild_speedup = d1.stats.rebuild_time.ms() / d8.stats.rebuild_time.ms();
    const double mount_speedup = d1.mount_ms / d8.mount_ms;
    std::printf("rebuild speedup %.1fx, full-mount speedup %.1fx (one streamed track read "
                "covers every record on the track; serial pays a rotational wait per record)\n",
                rebuild_speedup, mount_speedup);
    char blk[512];
    std::snprintf(blk, sizeof(blk),
                  "  \"pipeline\": {\"q\": 256, \"depth1_rebuild_ms\": %.3f, "
                  "\"depth8_rebuild_ms\": %.3f, \"rebuild_speedup\": %.3f, "
                  "\"depth1_mount_ms\": %.3f, \"depth8_mount_ms\": %.3f, "
                  "\"mount_speedup\": %.3f},\n",
                  d1.stats.rebuild_time.ms(), d8.stats.rebuild_time.ms(), rebuild_speedup,
                  d1.mount_ms, d8.mount_ms, mount_speedup);
    json += blk;
  }

  print_heading("4-shard mount: sequential vs overlapped shard recovery (Q = 256)");
  {
    const std::uint32_t shard_prefill = prefill / 2;  // per-array; extents spread it
    const ShardedMountRun seq =
        run_sharded_recovery(4, 256, shard_prefill, /*overlapped=*/false, 8);
    const ShardedMountRun ovl =
        run_sharded_recovery(4, 256, shard_prefill, /*overlapped=*/true, 8);
    sim::TablePrinter t({"mount", "virtual time (ms)", "records"});
    t.add_row({"sequential shards", sim::TablePrinter::fmt(seq.mount_ms, 0),
               sim::TablePrinter::fmt_int(seq.stats.records_found)});
    t.add_row({"overlapped shards", sim::TablePrinter::fmt(ovl.mount_ms, 0),
               sim::TablePrinter::fmt_int(ovl.stats.records_found)});
    t.print();
    const double speedup = seq.mount_ms / ovl.mount_ms;
    std::printf("overlap speedup %.1fx over %zu crashed shards (independent log spindles; "
                "ideal = shard count)\n",
                speedup, static_cast<std::size_t>(4));
    char blk[256];
    std::snprintf(blk, sizeof(blk),
                  "  \"sharded_mount\": {\"shards\": 4, \"q\": 256, \"sequential_ms\": %.3f, "
                  "\"overlapped_ms\": %.3f, \"speedup\": %.3f}\n}\n",
                  seq.mount_ms, ovl.mount_ms, speedup);
    json += blk;
  }
  if (json_path != nullptr) {
    std::ofstream out(json_path);
    out << json;
  }

  print_heading("Figure 4(b): recovery with vs without the write-back phase");
  sim::TablePrinter table_b(
      {"Q", "with write-back (ms)", "without (ms)", "slowdown", "paper"});
  for (const std::uint32_t q : {32u, 64u, 128u, 256u}) {
    const RecoveryRun with_wb = run_recovery(q, true, false, prefill);
    const RecoveryRun no_wb = run_recovery(q, false, false, prefill);
    table_b.add_row({sim::TablePrinter::fmt_int(q),
                     sim::TablePrinter::fmt(with_wb.total_ms, 0),
                     sim::TablePrinter::fmt(no_wb.total_ms, 0),
                     sim::TablePrinter::fmt(with_wb.total_ms / no_wb.total_ms, 1) + "x",
                     q == 256 ? ">3.5x" : "-"});
  }
  table_b.print();

  print_heading("Ablation: binary-search vs sequential locate (Q = 64)");
  {
    const RecoveryRun bin = run_recovery(64, false, false, prefill);
    const RecoveryRun seq = run_recovery(64, false, true, prefill);
    sim::TablePrinter t({"locate", "time (ms)", "tracks scanned"});
    t.add_row({"binary search", sim::TablePrinter::fmt(bin.stats.locate_time.ms(), 0),
               sim::TablePrinter::fmt_int(bin.stats.tracks_scanned)});
    t.add_row({"sequential scan", sim::TablePrinter::fmt(seq.stats.locate_time.ms(), 0),
               sim::TablePrinter::fmt_int(seq.stats.tracks_scanned)});
    t.print();
  }
  return 0;
}


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/device_queue.cpp" "src/io/CMakeFiles/trail_io.dir/device_queue.cpp.o" "gcc" "src/io/CMakeFiles/trail_io.dir/device_queue.cpp.o.d"
  "/root/repo/src/io/scheduler.cpp" "src/io/CMakeFiles/trail_io.dir/scheduler.cpp.o" "gcc" "src/io/CMakeFiles/trail_io.dir/scheduler.cpp.o.d"
  "/root/repo/src/io/standard_driver.cpp" "src/io/CMakeFiles/trail_io.dir/standard_driver.cpp.o" "gcc" "src/io/CMakeFiles/trail_io.dir/standard_driver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/disk/CMakeFiles/trail_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/trail_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/torture.dir/torture.cpp.o"
  "CMakeFiles/torture.dir/torture.cpp.o.d"
  "torture"
  "torture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/torture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
